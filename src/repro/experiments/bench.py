"""End-to-end sweep benchmark: baseline vs optimized hot path.

Measures the full experiment sweep (all four schedulers on both testbed
profiles) twice on the current machine:

* **baseline** — the pre-optimization behaviour, reproduced live with
  the verbatim reference implementations from
  :mod:`repro.cluster._legacy` (per-placement ``execute_slot``, uncached
  ``max_vm_capacity``) and a fresh :class:`PredictorCache` per sweep
  point (the old object-identity cache key meant every point refitted
  CORP's DNN/HMM stack);
* **optimized** — the current code: vectorized slot execution, memoized
  capacity, one shared content-keyed predictor fit, and optionally the
  process-parallel runner (``workers >= 2``).

Both numbers land in ``BENCH_runtime.json`` so the speedup claim is
always re-derivable on the machine that made it.  A correctness gate
compares the two sweeps' summaries before any timing is trusted.
"""

from __future__ import annotations

import json
import math
import platform
import time
from contextlib import contextmanager
from typing import Iterable, Mapping, Sequence

from ..cluster import _legacy
from ..cluster.job import Job
from ..cluster.machine import VirtualMachine
from ..cluster.resources import ResourceVector
from ..cluster.simulator import ClusterSimulator
from ..forecast.padding import AdaptivePadding
from .runner import PredictorCache, run_methods, run_specs, sweep_specs
from .scenarios import JOB_COUNTS, Scenario, cluster_scenario, ec2_scenario

__all__ = [
    "QUICK_COUNTS",
    "PRE_PR_REFERENCE",
    "legacy_mode",
    "sweep_scenarios",
    "run_benchmark",
    "write_benchmark",
]

#: Job counts of the abbreviated (CI smoke) sweep.
QUICK_COUNTS: tuple[int, ...] = (50, 150)

#: Wall-clock seconds of the same sweeps measured on the unmodified
#: code (the commit this optimization started from), for provenance.
#: The live baseline below is the number the speedup is computed from;
#: this record just documents what the original code did on the
#: development machine.
PRE_PR_REFERENCE: Mapping[str, object] = {
    "quick_s": 13.43,
    "full_s": 46.99,
    "machine": "x86_64, 1 core",
    "note": (
        "measured on the pre-optimization code; the 'baseline' entry is "
        "re-measured live via the legacy shim on the current machine"
    ),
}


#: (class, attribute, pre-optimization implementation) triples the
#: legacy shim swaps in.  Together these restore the original hot path:
#: per-placement slot execution, uncached capacity aggregation, fresh
#: vectors on every ``demand``/``committed``/``unallocated`` call,
#: numpy reductions for the per-call predicates, and numpy percentiles
#: in the padding trackers.
_LEGACY_PATCHES: tuple[tuple[type, str, object], ...] = (
    (VirtualMachine, "execute_slot", _legacy.legacy_execute_slot),
    (VirtualMachine, "committed", _legacy.legacy_committed),
    (VirtualMachine, "unallocated", _legacy.legacy_unallocated),
    (
        ClusterSimulator,
        "max_vm_capacity",
        lambda self: _legacy.legacy_max_vm_capacity(self.vms),
    ),
    (ResourceVector, "fits_within", _legacy.legacy_fits_within),
    (ResourceVector, "is_nonnegative", _legacy.legacy_is_nonnegative),
    (ResourceVector, "any_positive", _legacy.legacy_any_positive),
    (Job, "demand", _legacy.legacy_job_demand),
    (AdaptivePadding, "burst_pad", _legacy.legacy_burst_pad),
    (AdaptivePadding, "error_pad", _legacy.legacy_error_pad),
)


@contextmanager
def legacy_mode():
    """Temporarily restore the pre-optimization cluster hot path.

    Swaps in the verbatim pre-optimization method bodies from
    :mod:`repro.cluster._legacy` so the baseline can be *measured* on
    the current machine rather than quoted from a stale record.
    """
    originals = [
        (cls, name, cls.__dict__[name]) for cls, name, _ in _LEGACY_PATCHES
    ]
    for cls, name, impl in _LEGACY_PATCHES:
        setattr(cls, name, impl)
    try:
        yield
    finally:
        for cls, name, impl in originals:
            setattr(cls, name, impl)


def sweep_scenarios(counts: Iterable[int], seed: int = 7) -> list[Scenario]:
    """Both testbed profiles crossed with the requested job counts."""
    return [
        builder(n, seed=seed)
        for builder in (cluster_scenario, ec2_scenario)
        for n in counts
    ]


def _summaries(results) -> list[dict[str, float]]:
    out = []
    for r in results:
        s = r.summary()
        s.pop("allocation_latency_s")  # wall-clock; never comparable
        out.append(s)
    return out


def _run_baseline(counts: Sequence[int], seed: int) -> tuple[float, list[dict]]:
    """Pre-PR sweep: legacy hot path, one predictor refit per point."""
    summaries: list[dict[str, float]] = []
    with legacy_mode():
        t0 = time.perf_counter()
        for scenario in sweep_scenarios(counts, seed=seed):
            results = run_methods(
                scenario=scenario, predictor_cache=PredictorCache(), seed=seed
            )
            summaries.extend(_summaries(results.values()))
        elapsed = time.perf_counter() - t0
    return elapsed, summaries


def _run_optimized(
    counts: Sequence[int], seed: int, workers: int
) -> tuple[float, list[dict]]:
    """Current sweep: vectorized path, shared fit, optional workers."""
    specs = sweep_specs(scenarios=sweep_scenarios(counts, seed=seed), seed=seed)
    t0 = time.perf_counter()
    results = run_specs(
        specs=specs, workers=workers, predictor_cache=PredictorCache()
    )
    elapsed = time.perf_counter() - t0
    return elapsed, _summaries(results)


def _check_identity(
    baseline: list[dict], optimized: list[dict], rtol: float = 1e-9
) -> None:
    """The optimized sweep must reproduce the baseline's numbers."""
    if len(baseline) != len(optimized):
        raise AssertionError(
            f"sweep sizes differ: {len(baseline)} vs {len(optimized)}"
        )
    for i, (b, o) in enumerate(zip(baseline, optimized)):
        if set(b) != set(o):
            raise AssertionError(f"run {i}: summary keys differ: {b} vs {o}")
        for key, bv in b.items():
            ov = o[key]
            if not math.isclose(bv, ov, rel_tol=rtol, abs_tol=1e-12):
                raise AssertionError(
                    f"run {i}: {key} diverged: baseline {bv!r} vs "
                    f"optimized {ov!r}"
                )


#: Required baseline/optimized ratios.  The full sweep must be at least
#: 3x faster.  The quick sweep amortizes the single remaining offline
#: fit over only four points (the baseline refits four times, the
#: optimized path once and that one fit is most of its runtime), so its
#: achievable ratio is structurally lower — it gets a 2x smoke floor.
MIN_SPEEDUP_FULL: float = 3.0
MIN_SPEEDUP_QUICK: float = 2.0


def run_benchmark(
    *,
    quick: bool = False,
    workers: int = 0,
    seed: int = 7,
    min_speedup: float | None = None,
) -> dict:
    """Time baseline and optimized sweeps; return the report dict.

    Raises :class:`AssertionError` if the optimized sweep's summaries
    deviate from the baseline's, or if the speedup falls below
    ``min_speedup`` (default: 3x for the full sweep, 2x for the quick
    smoke; pass ``float("-inf")`` to disable the floor entirely).
    """
    if min_speedup is None:
        min_speedup = MIN_SPEEDUP_QUICK if quick else MIN_SPEEDUP_FULL
    counts = QUICK_COUNTS if quick else JOB_COUNTS
    baseline_s, baseline_summaries = _run_baseline(counts, seed)
    optimized_s, optimized_summaries = _run_optimized(counts, seed, workers)
    _check_identity(baseline_summaries, optimized_summaries)
    speedup = baseline_s / optimized_s
    report = {
        "benchmark": "experiment sweep: 4 schedulers x 2 profiles",
        "mode": "quick" if quick else "full",
        "job_counts": list(counts),
        "seed": seed,
        "n_runs": len(baseline_summaries),
        "baseline": {
            "seconds": round(baseline_s, 3),
            "how": (
                "measured live with the legacy shim: per-placement "
                "execute_slot, uncached max_vm_capacity, fresh predictor "
                "cache per sweep point (one DNN/HMM refit each)"
            ),
        },
        "optimized": {
            "seconds": round(optimized_s, 3),
            "workers": workers,
            "how": (
                "vectorized execute_slot, memoized max_vm_capacity, one "
                "content-keyed predictor fit shared across the sweep"
                + (", process-parallel runner" if workers >= 2 else "")
            ),
        },
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "identity_check": "passed",
        "machine": platform.machine(),
        "pre_pr_reference": dict(PRE_PR_REFERENCE),
    }
    if speedup < min_speedup:
        error = AssertionError(
            f"speedup {speedup:.2f}x below the required "
            f"{min_speedup:.1f}x (report: {json.dumps(report, indent=2)})"
        )
        error.report = report
        raise error
    return report


def write_benchmark(path: str, **kwargs) -> dict:
    """Run the benchmark and write the JSON report to ``path``.

    The report is written even when the speedup floor fails (the
    numbers are the evidence either way) before the error propagates.
    """
    try:
        report = run_benchmark(**kwargs)
    except AssertionError as exc:
        report = getattr(exc, "report", None)
        if report is not None:
            _dump(path, report)
        raise
    _dump(path, report)
    return report


def _dump(path: str, report: dict) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
