"""Experiment runner: one (scheduler, scenario) pair → metrics.

Also hosts the :class:`PredictorCache`, which shares CORP's offline
DNN/HMM fit across the many runs of a sweep — the paper trains once on
the historical Google-trace data and reuses the models.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..baselines import CloudScaleScheduler, DraScheduler, RccrScheduler
from ..cluster.scheduler import Scheduler
from ..cluster.simulator import ClusterSimulator, SimulationResult
from ..core.config import CorpConfig
from ..core.corp import CorpScheduler
from ..core.predictor import CorpPredictor
from ..trace.records import Trace
from .scenarios import Scenario

__all__ = [
    "PredictorCache",
    "default_schedulers",
    "run_scenario",
    "run_methods",
    "RunSpec",
    "run_specs",
    "sweep_specs",
    "METHOD_ORDER",
]

#: Presentation order used by every report (matches the paper's legends).
METHOD_ORDER: tuple[str, ...] = ("CORP", "RCCR", "CloudScale", "DRA")

SchedulerFactory = Callable[[], Scheduler]


@dataclass
class PredictorCache:
    """Caches fitted :class:`CorpPredictor` objects per (config, history).

    Keyed by the CORP config's identity fields and the history trace's
    *content* digest: sweeps regenerate the same seeded history trace at
    every point, so keying on object identity (the previous behaviour)
    silently refit the DNN/HMM stack once per sweep point.  One offline
    fit now serves every run that trains on identical data, which is
    what the paper does — train once on the historical Google-trace
    data, reuse the models.
    """

    _cache: dict[tuple, CorpPredictor] = field(default_factory=dict)

    def get(self, config: CorpConfig, history: Trace) -> CorpPredictor:
        """Fitted predictor for (config, history), fitting once per key."""
        key = (
            history.content_digest(),
            config.window_slots,
            config.input_slots,
            config.n_hidden_layers,
            config.units_per_layer,
            config.hmm_mode,
            config.use_hmm_correction,
            config.prediction_target,
            config.train_quantile,
            config.seed,
            config.train_max_epochs,
        )
        predictor = self._cache.get(key)
        if predictor is None:
            predictor = CorpPredictor(config=config).fit(history)
            self._cache[key] = predictor
        return predictor


def default_schedulers(
    *,
    corp_config: CorpConfig | None = None,
    history: Trace | None = None,
    cache: PredictorCache | None = None,
    seed: int = 0,
) -> dict[str, SchedulerFactory]:
    """Factories for the four methods with the paper's default settings.

    Passing ``history`` (and optionally a ``cache``) pre-fits CORP's
    predictor so the expensive offline phase is shared across runs.
    """
    cfg = corp_config or CorpConfig(seed=seed)

    def make_corp() -> Scheduler:
        """CORP factory, reusing the cached offline fit when possible."""
        predictor = None
        if history is not None:
            predictor = (cache or PredictorCache()).get(cfg, history)
        return CorpScheduler(cfg, predictor=predictor)

    return {
        "CORP": make_corp,
        "RCCR": lambda: RccrScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "CloudScale": lambda: CloudScaleScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "DRA": lambda: DraScheduler(window_slots=cfg.window_slots, seed=seed),
    }


def run_scenario(
    scenario: Scenario,
    scheduler: Scheduler,
    *,
    trace: Trace | None = None,
    history: Trace | None = None,
) -> SimulationResult:
    """Run one scheduler over one scenario.

    ``trace``/``history`` may be passed in to share generation across
    methods (the paper replays the same trace for every scheme).
    """
    sim = ClusterSimulator(scenario.profile, scheduler, scenario.sim_config)
    eval_trace = trace if trace is not None else scenario.evaluation_trace()
    hist_trace = history if history is not None else scenario.history_trace()
    return sim.run(eval_trace, history=hist_trace)


def run_methods(
    scenario: Scenario,
    factories: Mapping[str, SchedulerFactory] | None = None,
    *,
    methods: Iterable[str] = METHOD_ORDER,
    history: Trace | None = None,
    cache: PredictorCache | None = None,
    seed: int = 0,
) -> dict[str, SimulationResult]:
    """Run every requested method on the *same* evaluation trace."""
    eval_trace = scenario.evaluation_trace()
    hist_trace = history if history is not None else scenario.history_trace()
    if factories is None:
        factories = default_schedulers(history=hist_trace, cache=cache, seed=seed)
    results: dict[str, SimulationResult] = {}
    for name in methods:
        scheduler = factories[name]()
        results[name] = run_scenario(
            scenario, scheduler, trace=eval_trace, history=hist_trace
        )
    return results


# ----------------------------------------------------------------------
# Spec-based runner: the unit of work a sweep fans out over.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One (scenario, method) run — the schedulable unit of a sweep.

    Specs are plain picklable data: a sweep is a list of them, and the
    same list can execute serially or across worker processes with
    bit-identical results (wall-clock ``allocation_latency_s`` aside).
    """

    scenario: Scenario
    method: str
    seed: int = 0
    #: Optional CORP config override (defaults to ``CorpConfig(seed=seed)``).
    corp_config: CorpConfig | None = None


def sweep_specs(
    scenarios: Iterable[Scenario],
    *,
    methods: Iterable[str] = METHOD_ORDER,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
) -> list[RunSpec]:
    """The full cross product of scenarios × methods, in sweep order."""
    methods = tuple(methods)
    return [
        RunSpec(
            scenario=scenario, method=method, seed=seed, corp_config=corp_config
        )
        for scenario in scenarios
        for method in methods
    ]


def _execute_spec(
    spec: RunSpec,
    cache: PredictorCache,
    *,
    trace: Trace | None = None,
    history: Trace | None = None,
) -> SimulationResult:
    """Run one spec; traces may be passed in to share generation."""
    hist = history if history is not None else spec.scenario.history_trace()
    factories = default_schedulers(
        corp_config=spec.corp_config, history=hist, cache=cache, seed=spec.seed
    )
    return run_scenario(
        spec.scenario, factories[spec.method](), trace=trace, history=hist
    )


#: Per-process predictor cache for pool workers, seeded by the parent's
#: prefit entries via the pool initializer (fork start methods would
#: inherit it anyway; the initializer also covers spawn).
_WORKER_CACHE: PredictorCache | None = None


def _init_worker(prefit: dict) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = PredictorCache(_cache=prefit)


def _run_spec_in_worker(spec: RunSpec) -> SimulationResult:
    cache = _WORKER_CACHE if _WORKER_CACHE is not None else PredictorCache()
    return _execute_spec(spec, cache)


def run_specs(
    specs: Sequence[RunSpec],
    *,
    workers: int = 0,
    cache: PredictorCache | None = None,
) -> list[SimulationResult]:
    """Execute ``specs`` and return results in the same order.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs everything in-process (the default; no
        multiprocessing machinery involved).  ``N >= 2`` fans specs out
        over a :class:`ProcessPoolExecutor` of ``N`` processes.  Every
        run is seeded and single-threaded, so worker placement cannot
        change results: parallel output is bit-identical to serial
        output except for the wall-clock ``allocation_latency_s``.
    cache:
        Shared :class:`PredictorCache`.  CORP's offline fit is computed
        *once* in the parent for each distinct (config, history) pair
        and handed to the workers through the pool initializer, so no
        worker ever refits the DNN/HMM stack.
    """
    cache = cache if cache is not None else PredictorCache()
    if workers <= 1:
        results: list[SimulationResult] = []
        # Share per-scenario trace generation across that scenario's
        # methods (scenarios are regenerated deterministically from
        # their configs, so sharing is a pure optimization).
        traces: dict[int, tuple[Trace, Trace]] = {}
        for spec in specs:
            key = id(spec.scenario)
            if key not in traces:
                traces[key] = (
                    spec.scenario.evaluation_trace(),
                    spec.scenario.history_trace(),
                )
            trace, hist = traces[key]
            results.append(
                _execute_spec(spec, cache, trace=trace, history=hist)
            )
        return results

    # Pre-fit every CORP predictor the specs will need; workers receive
    # the fitted models and skip the offline phase entirely.
    hist_by_scenario: dict[int, Trace] = {}
    for spec in specs:
        if spec.method != "CORP":
            continue
        key = id(spec.scenario)
        if key not in hist_by_scenario:
            hist_by_scenario[key] = spec.scenario.history_trace()
        cfg = spec.corp_config or CorpConfig(seed=spec.seed)
        cache.get(cfg, hist_by_scenario[key])

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(dict(cache._cache),),
    ) as pool:
        futures = [pool.submit(_run_spec_in_worker, spec) for spec in specs]
        return [f.result() for f in futures]
