"""Experiment runner: one (scheduler, scenario) pair → metrics.

Also hosts the :class:`PredictorCache`, which shares CORP's offline
DNN/HMM fit across the many runs of a sweep — the paper trains once on
the historical Google-trace data and reuses the models.

API convention (since the :mod:`repro.api` redesign): the public entry
points :func:`run_methods`, :func:`run_specs` and :func:`sweep_specs`
take keyword-only arguments with uniform names (``scenario=``,
``specs=``, ``scenarios=``, ``predictor_cache=``, ``workers=``).  The
old positional forms and the old ``cache=`` keyword still work for one
release but raise :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..baselines import CloudScaleScheduler, DraScheduler, RccrScheduler
from ..cluster.scheduler import Scheduler
from ..cluster.simulator import ClusterSimulator, SimulationResult
from ..core.config import CorpConfig
from ..core.corp import CorpScheduler
from ..core.predictor import CorpPredictor
from ..obs import OBS
from ..trace.records import Trace
from .scenarios import Scenario

__all__ = [
    "PredictorCache",
    "default_schedulers",
    "run_scenario",
    "run_methods",
    "RunSpec",
    "run_specs",
    "sweep_specs",
    "METHOD_ORDER",
]

#: Presentation order used by every report (matches the paper's legends).
METHOD_ORDER: tuple[str, ...] = ("CORP", "RCCR", "CloudScale", "DRA")

SchedulerFactory = Callable[[], Scheduler]


def _warn_positional(func: str, hint: str) -> None:
    warnings.warn(
        f"positional arguments to {func}() are deprecated; "
        f"call it as {func}({hint})",
        DeprecationWarning,
        stacklevel=3,
    )


def _resolve_cache(
    func: str,
    predictor_cache: "PredictorCache | None",
    cache: "PredictorCache | None",
) -> "PredictorCache | None":
    """Fold the deprecated ``cache=`` spelling into ``predictor_cache=``."""
    if cache is not None:
        warnings.warn(
            f"the cache= keyword of {func}() is deprecated; "
            "use predictor_cache=",
            DeprecationWarning,
            stacklevel=3,
        )
        if predictor_cache is None:
            predictor_cache = cache
    return predictor_cache


@dataclass
class PredictorCache:
    """LRU cache of fitted :class:`CorpPredictor` objects.

    Keyed by the CORP config's identity fields and the history trace's
    *content* digest: sweeps regenerate the same seeded history trace at
    every point, so keying on object identity (the original behaviour)
    silently refit the DNN/HMM stack once per sweep point.  One offline
    fit now serves every run that trains on identical data, which is
    what the paper does — train once on the historical Google-trace
    data, reuse the models.

    The cache is bounded (``maxsize`` entries, least-recently-used
    evicted first) so a long-lived process sweeping many distinct
    (config, history) pairs cannot grow it without limit.  Hit/miss
    totals are kept on the instance and mirrored to the observability
    counters ``predictor_cache.hit`` / ``predictor_cache.miss`` when a
    sink or profiler is active.
    """

    _cache: "OrderedDict[tuple, CorpPredictor]" = field(
        default_factory=OrderedDict
    )
    #: Large enough to hold one fit per scenario of the full sweep (12)
    #: plus the ablation variants; small enough to bound a long-lived
    #: process.  LRU order makes sweeps (which touch keys consecutively)
    #: eviction-free even right at the bound.
    maxsize: int = 16
    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        # Worker-pool seeding hands over a plain dict; normalize it.
        if not isinstance(self._cache, OrderedDict):
            self._cache = OrderedDict(self._cache)

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, config: CorpConfig, history: Trace) -> CorpPredictor:
        """Fitted predictor for (config, history), fitting once per key."""
        key = (
            history.content_digest(),
            config.window_slots,
            config.input_slots,
            config.n_hidden_layers,
            config.units_per_layer,
            config.hmm_mode,
            config.use_hmm_correction,
            config.prediction_target,
            config.train_quantile,
            config.seed,
            config.train_max_epochs,
        )
        predictor = self._cache.get(key)
        if predictor is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            OBS.count("predictor_cache.hit")
            return predictor
        self.misses += 1
        OBS.count("predictor_cache.miss")
        predictor = CorpPredictor(config=config).fit(history)
        self._cache[key] = predictor
        while len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
        return predictor


def default_schedulers(
    *,
    corp_config: CorpConfig | None = None,
    history: Trace | None = None,
    predictor_cache: PredictorCache | None = None,
    cache: PredictorCache | None = None,
    seed: int = 0,
) -> dict[str, SchedulerFactory]:
    """Factories for the four methods with the paper's default settings.

    Passing ``history`` (and optionally a ``predictor_cache``) pre-fits
    CORP's predictor so the expensive offline phase is shared across
    runs.
    """
    predictor_cache = _resolve_cache(
        "default_schedulers", predictor_cache, cache
    )
    cfg = corp_config or CorpConfig(seed=seed)

    def make_corp() -> Scheduler:
        """CORP factory, reusing the cached offline fit when possible."""
        predictor = None
        if history is not None:
            # `is None`, not truthiness: an empty cache is falsy (len 0)
            # but must still be filled and shared, not replaced.
            owner = predictor_cache if predictor_cache is not None else PredictorCache()
            predictor = owner.get(cfg, history)
        return CorpScheduler(cfg, predictor=predictor)

    return {
        "CORP": make_corp,
        "RCCR": lambda: RccrScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "CloudScale": lambda: CloudScaleScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "DRA": lambda: DraScheduler(window_slots=cfg.window_slots, seed=seed),
    }


def run_scenario(
    scenario: Scenario,
    scheduler: Scheduler,
    *,
    trace: Trace | None = None,
    history: Trace | None = None,
) -> SimulationResult:
    """Run one scheduler over one scenario.

    ``trace``/``history`` may be passed in to share generation across
    methods (the paper replays the same trace for every scheme).
    """
    sim = ClusterSimulator(scenario.profile, scheduler, scenario.sim_config)
    eval_trace = trace if trace is not None else scenario.evaluation_trace()
    hist_trace = history if history is not None else scenario.history_trace()
    with OBS.span(f"run:{scheduler.name}"):
        return sim.run(eval_trace, history=hist_trace)


def run_methods(
    *args,
    scenario: Scenario | None = None,
    factories: Mapping[str, SchedulerFactory] | None = None,
    methods: Iterable[str] = METHOD_ORDER,
    history: Trace | None = None,
    predictor_cache: PredictorCache | None = None,
    cache: PredictorCache | None = None,
    seed: int = 0,
) -> dict[str, SimulationResult]:
    """Run every requested method on the *same* evaluation trace.

    Keyword-only: ``run_methods(scenario=..., predictor_cache=...)``.
    The legacy positional form ``run_methods(scenario, factories)`` and
    the ``cache=`` keyword are deprecated shims.
    """
    if args:
        _warn_positional("run_methods", "scenario=..., factories=...")
        if len(args) > 2:
            raise TypeError("run_methods takes at most 2 positional arguments")
        if scenario is None:
            scenario = args[0]
        if len(args) == 2 and factories is None:
            factories = args[1]
    if scenario is None:
        raise TypeError("run_methods() requires scenario=")
    predictor_cache = _resolve_cache("run_methods", predictor_cache, cache)
    with OBS.span("trace:generate"):
        eval_trace = scenario.evaluation_trace()
        hist_trace = (
            history if history is not None else scenario.history_trace()
        )
    if factories is None:
        factories = default_schedulers(
            history=hist_trace, predictor_cache=predictor_cache, seed=seed
        )
    results: dict[str, SimulationResult] = {}
    for name in methods:
        scheduler = factories[name]()
        results[name] = run_scenario(
            scenario, scheduler, trace=eval_trace, history=hist_trace
        )
    return results


# ----------------------------------------------------------------------
# Spec-based runner: the unit of work a sweep fans out over.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One (scenario, method) run — the schedulable unit of a sweep.

    Specs are plain picklable data: a sweep is a list of them, and the
    same list can execute serially or across worker processes with
    bit-identical results (wall-clock ``allocation_latency_s`` aside).
    """

    scenario: Scenario
    method: str
    seed: int = 0
    #: Optional CORP config override (defaults to ``CorpConfig(seed=seed)``).
    corp_config: CorpConfig | None = None


def sweep_specs(
    *args,
    scenarios: Iterable[Scenario] | None = None,
    methods: Iterable[str] = METHOD_ORDER,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
) -> list[RunSpec]:
    """The full cross product of scenarios × methods, in sweep order.

    Keyword-only: ``sweep_specs(scenarios=[...])``.  The legacy
    positional form is a deprecated shim.
    """
    if args:
        _warn_positional("sweep_specs", "scenarios=[...]")
        if len(args) > 1:
            raise TypeError("sweep_specs takes at most 1 positional argument")
        if scenarios is None:
            scenarios = args[0]
    if scenarios is None:
        raise TypeError("sweep_specs() requires scenarios=")
    methods = tuple(methods)
    return [
        RunSpec(
            scenario=scenario, method=method, seed=seed, corp_config=corp_config
        )
        for scenario in scenarios
        for method in methods
    ]


def _execute_spec(
    spec: RunSpec,
    cache: PredictorCache,
    *,
    trace: Trace | None = None,
    history: Trace | None = None,
) -> SimulationResult:
    """Run one spec; traces may be passed in to share generation."""
    if history is not None:
        hist = history
    else:
        with OBS.span("trace:generate"):
            hist = spec.scenario.history_trace()
    factories = default_schedulers(
        corp_config=spec.corp_config,
        history=hist,
        predictor_cache=cache,
        seed=spec.seed,
    )
    return run_scenario(
        spec.scenario, factories[spec.method](), trace=trace, history=hist
    )


#: Per-process predictor cache for pool workers, seeded by the parent's
#: prefit entries via the pool initializer (fork start methods would
#: inherit it anyway; the initializer also covers spawn).
_WORKER_CACHE: PredictorCache | None = None


def _init_worker(prefit: dict) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = PredictorCache(_cache=prefit)


def _run_spec_in_worker(spec: RunSpec) -> SimulationResult:
    cache = _WORKER_CACHE if _WORKER_CACHE is not None else PredictorCache()
    return _execute_spec(spec, cache)


def run_specs(
    *args,
    specs: Sequence[RunSpec] | None = None,
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
    cache: PredictorCache | None = None,
) -> list[SimulationResult]:
    """Execute ``specs`` and return results in the same order.

    Keyword-only: ``run_specs(specs=[...], workers=..., predictor_cache=...)``.
    The legacy positional form and ``cache=`` keyword are deprecated
    shims.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs everything in-process (the default; no
        multiprocessing machinery involved).  ``N >= 2`` fans specs out
        over a :class:`ProcessPoolExecutor` of ``N`` processes.  Every
        run is seeded and single-threaded, so worker placement cannot
        change results: parallel output is bit-identical to serial
        output except for the wall-clock ``allocation_latency_s``.
        Observability is process-local — events/spans from pooled
        workers are not captured; use the serial path when recording.
    predictor_cache:
        Shared :class:`PredictorCache`.  CORP's offline fit is computed
        *once* in the parent for each distinct (config, history) pair
        and handed to the workers through the pool initializer, so no
        worker ever refits the DNN/HMM stack.
    """
    if args:
        _warn_positional("run_specs", "specs=[...]")
        if len(args) > 1:
            raise TypeError("run_specs takes at most 1 positional argument")
        if specs is None:
            specs = args[0]
    if specs is None:
        raise TypeError("run_specs() requires specs=")
    predictor_cache = _resolve_cache("run_specs", predictor_cache, cache)
    shared = predictor_cache if predictor_cache is not None else PredictorCache()
    if workers <= 1:
        results: list[SimulationResult] = []
        # Share per-scenario trace generation across that scenario's
        # methods (scenarios are regenerated deterministically from
        # their configs, so sharing is a pure optimization).
        traces: dict[int, tuple[Trace, Trace]] = {}
        for spec in specs:
            key = id(spec.scenario)
            if key not in traces:
                with OBS.span("trace:generate"):
                    traces[key] = (
                        spec.scenario.evaluation_trace(),
                        spec.scenario.history_trace(),
                    )
            trace, hist = traces[key]
            results.append(
                _execute_spec(spec, shared, trace=trace, history=hist)
            )
        return results

    # Pre-fit every CORP predictor the specs will need; workers receive
    # the fitted models and skip the offline phase entirely.
    hist_by_scenario: dict[int, Trace] = {}
    for spec in specs:
        if spec.method != "CORP":
            continue
        key = id(spec.scenario)
        if key not in hist_by_scenario:
            hist_by_scenario[key] = spec.scenario.history_trace()
        cfg = spec.corp_config or CorpConfig(seed=spec.seed)
        shared.get(cfg, hist_by_scenario[key])

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(dict(shared._cache),),
    ) as pool:
        futures = [pool.submit(_run_spec_in_worker, spec) for spec in specs]
        return [f.result() for f in futures]
