"""Experiment runner: one (scheduler, scenario) pair → metrics.

Also hosts the :class:`PredictorCache`, which shares CORP's offline
DNN/HMM fit across the many runs of a sweep — the paper trains once on
the historical Google-trace data and reuses the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..baselines import CloudScaleScheduler, DraScheduler, RccrScheduler
from ..cluster.scheduler import Scheduler
from ..cluster.simulator import ClusterSimulator, SimulationResult
from ..core.config import CorpConfig
from ..core.corp import CorpScheduler
from ..core.predictor import CorpPredictor
from ..trace.records import Trace
from .scenarios import Scenario

__all__ = [
    "PredictorCache",
    "default_schedulers",
    "run_scenario",
    "run_methods",
    "METHOD_ORDER",
]

#: Presentation order used by every report (matches the paper's legends).
METHOD_ORDER: tuple[str, ...] = ("CORP", "RCCR", "CloudScale", "DRA")

SchedulerFactory = Callable[[], Scheduler]


@dataclass
class PredictorCache:
    """Caches fitted :class:`CorpPredictor` objects per (config, history).

    Keyed by the CORP config's identity fields and the history trace's
    object id — sweeps reuse the same history object, so one offline fit
    serves the whole sweep.
    """

    _cache: dict[tuple, CorpPredictor] = field(default_factory=dict)

    def get(self, config: CorpConfig, history: Trace) -> CorpPredictor:
        """Fitted predictor for (config, history), fitting once per key."""
        key = (
            id(history),
            config.window_slots,
            config.input_slots,
            config.n_hidden_layers,
            config.units_per_layer,
            config.hmm_mode,
            config.use_hmm_correction,
            config.prediction_target,
            config.train_quantile,
            config.seed,
            config.train_max_epochs,
        )
        predictor = self._cache.get(key)
        if predictor is None:
            predictor = CorpPredictor(config=config).fit(history)
            self._cache[key] = predictor
        return predictor


def default_schedulers(
    *,
    corp_config: CorpConfig | None = None,
    history: Trace | None = None,
    cache: PredictorCache | None = None,
    seed: int = 0,
) -> dict[str, SchedulerFactory]:
    """Factories for the four methods with the paper's default settings.

    Passing ``history`` (and optionally a ``cache``) pre-fits CORP's
    predictor so the expensive offline phase is shared across runs.
    """
    cfg = corp_config or CorpConfig(seed=seed)

    def make_corp() -> Scheduler:
        """CORP factory, reusing the cached offline fit when possible."""
        predictor = None
        if history is not None:
            predictor = (cache or PredictorCache()).get(cfg, history)
        return CorpScheduler(cfg, predictor=predictor)

    return {
        "CORP": make_corp,
        "RCCR": lambda: RccrScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "CloudScale": lambda: CloudScaleScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "DRA": lambda: DraScheduler(window_slots=cfg.window_slots, seed=seed),
    }


def run_scenario(
    scenario: Scenario,
    scheduler: Scheduler,
    *,
    trace: Trace | None = None,
    history: Trace | None = None,
) -> SimulationResult:
    """Run one scheduler over one scenario.

    ``trace``/``history`` may be passed in to share generation across
    methods (the paper replays the same trace for every scheme).
    """
    sim = ClusterSimulator(scenario.profile, scheduler, scenario.sim_config)
    eval_trace = trace if trace is not None else scenario.evaluation_trace()
    hist_trace = history if history is not None else scenario.history_trace()
    return sim.run(eval_trace, history=hist_trace)


def run_methods(
    scenario: Scenario,
    factories: Mapping[str, SchedulerFactory] | None = None,
    *,
    methods: Iterable[str] = METHOD_ORDER,
    history: Trace | None = None,
    cache: PredictorCache | None = None,
    seed: int = 0,
) -> dict[str, SimulationResult]:
    """Run every requested method on the *same* evaluation trace."""
    eval_trace = scenario.evaluation_trace()
    hist_trace = history if history is not None else scenario.history_trace()
    if factories is None:
        factories = default_schedulers(history=hist_trace, cache=cache, seed=seed)
    results: dict[str, SimulationResult] = {}
    for name in methods:
        scheduler = factories[name]()
        results[name] = run_scenario(
            scenario, scheduler, trace=eval_trace, history=hist_trace
        )
    return results
