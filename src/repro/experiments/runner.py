"""Experiment runner: one (scheduler, scenario) pair → metrics.

Also hosts the :class:`PredictorCache`, which shares CORP's offline
DNN/HMM fit across the many runs of a sweep — the paper trains once on
the historical Google-trace data and reuses the models.

API convention (finalized in v1.2): the public entry points
:func:`run_methods`, :func:`run_specs` and :func:`sweep_specs` take
keyword-only arguments with uniform names (``scenario=``, ``specs=``,
``scenarios=``, ``predictor_cache=``, ``workers=``).  The v1.1
deprecation shims (positional forms, the ``cache=`` spelling) are gone:
those calls now raise :class:`TypeError`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..baselines import CloudScaleScheduler, DraScheduler, RccrScheduler
from ..cluster.scheduler import Scheduler
from ..cluster.simulator import ClusterSimulator, SimulationResult
from ..core.config import CorpConfig
from ..core.corp import CorpScheduler
from ..core.predictor_store import PredictorStore, fit_fingerprint
from ..forecast.base import Predictor
from ..forecast.registry import create_predictor, predictor_class
from ..obs import OBS
from ..obs.events import Event, JsonlSink, read_jsonl
from ..trace.records import Trace
from .scenarios import Scenario
from .workloads.diurnal import flash_crowd_p99_wait
from .workloads.pipeline import run_pipeline

__all__ = [
    "PredictorCache",
    "default_schedulers",
    "run_scenario",
    "run_methods",
    "RunSpec",
    "run_specs",
    "sweep_specs",
    "METHOD_ORDER",
]

#: Presentation order used by every report (matches the paper's legends).
METHOD_ORDER: tuple[str, ...] = ("CORP", "RCCR", "CloudScale", "DRA")

SchedulerFactory = Callable[[], Scheduler]


@dataclass
class PredictorCache:
    """LRU cache of fitted :class:`~repro.forecast.base.Predictor` objects.

    Keyed by the predictor family, the CORP config's identity fields and
    the history trace's *content* digest: sweeps regenerate the same
    seeded history trace at every point, so keying on object identity
    (the original behaviour) silently refit the DNN/HMM stack once per
    sweep point.  One offline fit now serves every run that trains on
    identical data, which is what the paper does — train once on the
    historical Google-trace data, reuse the models.

    The cache is bounded (``maxsize`` entries, least-recently-used
    evicted first) so a long-lived process sweeping many distinct
    (config, history) pairs cannot grow it without limit.  Hit/miss
    totals are kept on the instance and mirrored to the observability
    counters ``predictor_cache.hit`` / ``predictor_cache.miss`` when a
    sink or profiler is active.

    A :class:`~repro.core.predictor_store.PredictorStore` extends the
    cache across processes: memory misses consult the store before
    fitting, and fresh fits are persisted back.  ``warm_start=True``
    additionally seeds unavoidable fits from the nearest stored artifact
    of the same config (opt-in — warm-started weights differ from cold
    ones); ``fit_workers >= 2`` fans the per-resource fits across
    processes (bit-identical to serial).
    """

    _cache: "OrderedDict[str, Predictor]" = field(
        default_factory=OrderedDict
    )
    #: Large enough to hold one fit per scenario of the full sweep (12)
    #: plus the ablation variants; small enough to bound a long-lived
    #: process.  LRU order makes sweeps (which touch keys consecutively)
    #: eviction-free even right at the bound.
    maxsize: int = 16
    hits: int = 0
    misses: int = 0
    #: Optional on-disk artifact store (cross-process tier).
    store: PredictorStore | None = None
    #: Seed unavoidable fits from the store's nearest same-config
    #: artifact.  Opt-in: changes the fitted weights.
    warm_start: bool = False
    #: ``>= 2`` fans the independent per-resource fits across worker
    #: processes; ``0``/``1`` is the plain serial loop.
    fit_workers: int = 0
    store_hits: int = 0
    store_misses: int = 0
    warm_starts: int = 0

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        # Worker-pool seeding hands over a plain dict; normalize it.
        if not isinstance(self._cache, OrderedDict):
            self._cache = OrderedDict(self._cache)

    def __len__(self) -> int:
        return len(self._cache)

    def get(
        self, config: CorpConfig, history: Trace, predictor: str = "corp"
    ) -> Predictor:
        """Fitted predictor for (family, config, history), fit once per key.

        ``predictor`` is a registry family name; the fingerprint keys on
        it, so artifacts from different families never collide.  Only
        families advertising the ``"serialize"`` capability touch the
        on-disk store; the ``"auto"`` selector fits its candidates
        *through this cache*, so every candidate family shares artifacts
        with plain single-family runs.
        """
        digest = history.content_digest()
        key = fit_fingerprint(config, digest, predictor)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            OBS.count("predictor_cache.hit")
            return cached
        self.misses += 1
        OBS.count("predictor_cache.miss")
        fresh = create_predictor(predictor, config)
        serializable = "serialize" in fresh.capabilities
        if self.store is not None and serializable:
            loaded = self.store.load(config, digest, predictor)
            if loaded is not None:
                self.store_hits += 1
                self._insert(key, loaded)
                return loaded
            self.store_misses += 1
        if "online_selection" in fresh.capabilities:
            fresh.fit(
                history,
                fit_candidate=lambda name: self.get(
                    config, history, predictor=name
                ),
            )
        else:
            donor = None
            if (
                self.warm_start
                and self.store is not None
                and "warm_start" in fresh.capabilities
            ):
                donor = self.store.nearest(config, exclude_digest=digest)
            kwargs: dict = {}
            if "warm_start" in fresh.capabilities:
                kwargs["warm_start"] = donor
            if "parallel_fit" in fresh.capabilities:
                kwargs["workers"] = self.fit_workers
            fresh.fit(history, **kwargs)
            if donor is not None:
                self.warm_starts += 1
        if self.store is not None and serializable:
            self.store.save(config, digest, fresh)
        self._insert(key, fresh)
        return fresh

    def _insert(self, key: str, predictor: Predictor) -> None:
        self._cache[key] = predictor
        while len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss summary for profile output and ``repro cache stats``."""
        out = {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.store is not None:
            out["store"] = self.store.stats()
            out["warm_starts"] = self.warm_starts
        return out


def default_schedulers(
    *,
    corp_config: CorpConfig | None = None,
    history: Trace | None = None,
    predictor_cache: PredictorCache | None = None,
    seed: int = 0,
    predictor: "str | Predictor" = "corp",
) -> dict[str, SchedulerFactory]:
    """Factories for the four methods with the paper's default settings.

    Passing ``history`` (and optionally a ``predictor_cache``) pre-fits
    CORP's predictor so the expensive offline phase is shared across
    runs.  ``predictor`` selects the family behind the CORP scheduler:
    a registry name (cache-shared) or an already-constructed
    :class:`~repro.forecast.base.Predictor` instance (cache-bypassing;
    fitted here if needed).
    """
    cfg = corp_config or CorpConfig(seed=seed)
    if isinstance(predictor, str):
        predictor_class(predictor)  # unknown names fail at call time

    def make_corp() -> Scheduler:
        """CORP factory, reusing the cached offline fit when possible."""
        if isinstance(predictor, Predictor):
            if not predictor.fitted and history is not None:
                predictor.fit(history)
            return CorpScheduler(cfg, predictor=predictor)
        fitted = None
        if history is not None:
            # `is None`, not truthiness: an empty cache is falsy (len 0)
            # but must still be filled and shared, not replaced.
            owner = predictor_cache if predictor_cache is not None else PredictorCache()
            fitted = owner.get(cfg, history, predictor=predictor)
        elif predictor != "corp":
            fitted = create_predictor(predictor, cfg)
        return CorpScheduler(cfg, predictor=fitted)

    return {
        "CORP": make_corp,
        "RCCR": lambda: RccrScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "CloudScale": lambda: CloudScaleScheduler(
            window_slots=cfg.window_slots, seed=seed
        ),
        "DRA": lambda: DraScheduler(window_slots=cfg.window_slots, seed=seed),
    }


def run_scenario(
    scenario: Scenario,
    scheduler: Scheduler,
    *,
    trace: Trace | None = None,
    history: Trace | None = None,
) -> SimulationResult:
    """Run one scheduler over one scenario.

    ``trace``/``history`` may be passed in to share generation across
    methods (the paper replays the same trace for every scheme).  The
    scenario's ``fault_plan`` (if any) is replayed against the run.
    """
    sim = ClusterSimulator(
        scenario.profile,
        scheduler,
        scenario.sim_config,
        fault_plan=scenario.fault_plan,
    )
    eval_trace = trace if trace is not None else scenario.evaluation_trace()
    hist_trace = history if history is not None else scenario.history_trace()
    with OBS.span(f"run:{scheduler.name}"):
        if scenario.pipeline is not None:
            result = run_pipeline(
                sim, scenario.pipeline, eval_trace, history=hist_trace
            )
        else:
            result = sim.run(eval_trace, history=hist_trace)
    if scenario.arrival_pattern is not None:
        span = max((r.submit_time_s for r in eval_trace), default=0.0)
        wait = flash_crowd_p99_wait(
            result.jobs,
            scenario.arrival_pattern,
            span,
            scenario.sim_config.slot_duration_s,
        )
        result.extra_metrics = {
            **(result.extra_metrics or {}),
            "flash_crowd_p99_wait": wait,
        }
    return result


def run_methods(
    *,
    scenario: Scenario,
    factories: Mapping[str, SchedulerFactory] | None = None,
    methods: Iterable[str] = METHOD_ORDER,
    history: Trace | None = None,
    predictor_cache: PredictorCache | None = None,
    seed: int = 0,
    predictor: "str | Predictor" = "corp",
) -> dict[str, SimulationResult]:
    """Run every requested method on the *same* evaluation trace.

    Keyword-only: ``run_methods(scenario=..., predictor_cache=...)``.
    ``predictor`` names the family CORP forecasts with (baselines are
    unaffected); only used when ``factories`` is not given.
    """
    with OBS.span("trace:generate"):
        eval_trace = scenario.evaluation_trace()
        hist_trace = (
            history if history is not None else scenario.history_trace()
        )
    if factories is None:
        factories = default_schedulers(
            history=hist_trace,
            predictor_cache=predictor_cache,
            seed=seed,
            predictor=predictor,
        )
    results: dict[str, SimulationResult] = {}
    for name in methods:
        scheduler = factories[name]()
        results[name] = run_scenario(
            scenario, scheduler, trace=eval_trace, history=hist_trace
        )
    return results


# ----------------------------------------------------------------------
# Spec-based runner: the unit of work a sweep fans out over.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One (scenario, method) run — the schedulable unit of a sweep.

    Specs are plain picklable data: a sweep is a list of them, and the
    same list can execute serially or across worker processes with
    bit-identical results (wall-clock ``allocation_latency_s`` aside).
    """

    scenario: Scenario
    method: str
    seed: int = 0
    #: Optional CORP config override (defaults to ``CorpConfig(seed=seed)``).
    corp_config: CorpConfig | None = None
    #: Registry family name CORP forecasts with (specs stay picklable,
    #: so only names — not instances — travel here).
    predictor: str = "corp"


def sweep_specs(
    *,
    scenarios: Iterable[Scenario],
    methods: Iterable[str] = METHOD_ORDER,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
    predictor: str = "corp",
) -> list[RunSpec]:
    """The full cross product of scenarios × methods, in sweep order.

    Keyword-only: ``sweep_specs(scenarios=[...])``.
    """
    methods = tuple(methods)
    return [
        RunSpec(
            scenario=scenario,
            method=method,
            seed=seed,
            corp_config=corp_config,
            predictor=predictor,
        )
        for scenario in scenarios
        for method in methods
    ]


def _execute_spec(
    spec: RunSpec,
    cache: PredictorCache,
    *,
    trace: Trace | None = None,
    history: Trace | None = None,
) -> SimulationResult:
    """Run one spec; traces may be passed in to share generation."""
    if history is not None:
        hist = history
    else:
        with OBS.span("trace:generate"):
            hist = spec.scenario.history_trace()
    factories = default_schedulers(
        corp_config=spec.corp_config,
        history=hist,
        predictor_cache=cache,
        seed=spec.seed,
        predictor=spec.predictor,
    )
    return run_scenario(
        spec.scenario, factories[spec.method](), trace=trace, history=hist
    )


#: Per-process predictor cache for pool workers, seeded by the parent's
#: prefit entries via the pool initializer (fork start methods would
#: inherit it anyway; the initializer also covers spawn).
_WORKER_CACHE: PredictorCache | None = None


def _init_worker(prefit: dict) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = PredictorCache(_cache=prefit)


def _run_spec_in_worker(
    spec: RunSpec, shard_path: str | None = None
) -> SimulationResult:
    cache = _WORKER_CACHE if _WORKER_CACHE is not None else PredictorCache()
    if shard_path is None:
        return _execute_spec(spec, cache)
    # Event capture in a pooled worker: record this spec's events into
    # its own shard file; the parent merges shards in spec order.
    from ..obs import capture_events

    with capture_events(JsonlSink(shard_path)):
        return _execute_spec(spec, cache)


def _shard_path(events_path: str, index: int) -> str:
    return f"{events_path}.shard-{index:04d}"


def _merge_shards(events_path: str, n_specs: int) -> None:
    """Re-emit per-spec shard files into the parent's attached sink.

    Shards are merged in spec-index order, so the merged stream is
    ordered exactly like a serial run's (events within one spec are
    already in emission order).  Shard files are removed after merging.
    """
    sink = OBS.sink
    for index in range(n_specs):
        shard = _shard_path(events_path, index)
        if not os.path.exists(shard):  # pragma: no cover - crashed worker
            continue
        for record in read_jsonl(shard):
            name = str(record.pop("event"))
            if sink is not None:
                sink.emit(Event(name=name, fields=record))
        os.unlink(shard)


def run_specs(
    *,
    specs: Sequence[RunSpec],
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
    events_path: str | None = None,
) -> list[SimulationResult]:
    """Execute ``specs`` and return results in the same order.

    Keyword-only: ``run_specs(specs=[...], workers=..., predictor_cache=...)``.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs everything in-process (the default; no
        multiprocessing machinery involved).  ``N >= 2`` fans specs out
        over a :class:`ProcessPoolExecutor` of ``N`` processes.  Every
        run is seeded and single-threaded, so worker placement cannot
        change results: parallel output is bit-identical to serial
        output except for the wall-clock ``allocation_latency_s``.
    predictor_cache:
        Shared :class:`PredictorCache`.  CORP's offline fit is computed
        *once* in the parent for each distinct (config, history) pair
        and handed to the workers through the pool initializer, so no
        worker ever refits the DNN/HMM stack.
    events_path:
        Only meaningful with ``workers >= 2``: each spec's events are
        recorded to ``{events_path}.shard-NNNN`` in its worker process
        and merged, in spec order, into the parent's attached sink when
        the pool joins.  The serial path ignores this (events already
        flow to the parent's sink directly).
    """
    shared = predictor_cache if predictor_cache is not None else PredictorCache()
    if workers <= 1:
        results: list[SimulationResult] = []
        # Share per-scenario trace generation across that scenario's
        # methods (scenarios are regenerated deterministically from
        # their configs, so sharing is a pure optimization).
        traces: dict[int, tuple[Trace, Trace]] = {}
        for spec in specs:
            key = id(spec.scenario)
            if key not in traces:
                with OBS.span("trace:generate"):
                    traces[key] = (
                        spec.scenario.evaluation_trace(),
                        spec.scenario.history_trace(),
                    )
            trace, hist = traces[key]
            results.append(
                _execute_spec(spec, shared, trace=trace, history=hist)
            )
        return results

    # Pre-fit every CORP predictor the specs will need; workers receive
    # the fitted models and skip the offline phase entirely.
    hist_by_scenario: dict[int, Trace] = {}
    for spec in specs:
        if spec.method != "CORP":
            continue
        key = id(spec.scenario)
        if key not in hist_by_scenario:
            hist_by_scenario[key] = spec.scenario.history_trace()
        cfg = spec.corp_config or CorpConfig(seed=spec.seed)
        shared.get(cfg, hist_by_scenario[key], predictor=spec.predictor)

    # Flush the parent's sink before the pool forks: an unflushed stdio
    # buffer is duplicated into every child, and each child's exit would
    # flush the same lines into the shared file again.
    sink_flush = getattr(OBS.sink, "flush", None)
    if sink_flush is not None:
        sink_flush()
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(dict(shared._cache),),
    ) as pool:
        futures = [
            pool.submit(
                _run_spec_in_worker,
                spec,
                _shard_path(events_path, i) if events_path is not None else None,
            )
            for i, spec in enumerate(specs)
        ]
        results = [f.result() for f in futures]
    if events_path is not None:
        _merge_shards(events_path, len(specs))
    return results
