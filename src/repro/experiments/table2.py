"""Table II — parameter settings of the evaluation (Section IV).

Regenerates the paper's parameter table from the *live* defaults of
this reproduction, so any drift between code and paper is visible: each
row carries the paper's setting and the value the code actually uses.
(Table I is notation and has no runtime counterpart.)
"""

from __future__ import annotations

from ..cluster.resources import NUM_RESOURCES
from ..core.config import CorpConfig
from .report import format_table
from .scenarios import JOB_COUNTS, cluster_scenario

__all__ = ["table2_rows", "render_table2"]


def table2_rows() -> list[list[str]]:
    """Rows of Table II: parameter, meaning, paper setting, ours."""
    config = CorpConfig()
    scenario = cluster_scenario(JOB_COUNTS[-1])
    profile = scenario.profile
    return [
        ["N_p", "# of servers", "30-50", str(profile.n_pms)],
        ["N_v", "# of VMs", "100-400", str(profile.n_vms)],
        ["|J|", "# of jobs", "50-300",
         f"{JOB_COUNTS[0]}-{JOB_COUNTS[-1]}"],
        ["l", "# of resource types", "3", str(NUM_RESOURCES)],
        ["P_th", "probability threshold", "0.95",
         f"{config.probability_threshold:g}"],
        ["h", "# of layers in DNN", "4", str(config.n_hidden_layers)],
        ["N_n", "# of units per layer", "50", str(config.units_per_layer)],
        ["H", "# of states in HMM", "3", "3"],
        ["theta", "significance level", "5%-30%",
         f"{config.significance_level:.0%} (default; swept 10%-50%)"],
        ["eta", "confidence level", "50%-90%",
         f"{config.confidence_level:.0%} (default; swept 50%-90%)"],
        ["L", "prediction window", "1 minute",
         f"{config.window_slots} slots x 10 s"],
        ["eps", "error tolerance", "(unspecified)",
         f"{config.error_tolerance:g} of VM commitment"],
    ]


def render_table2() -> str:
    """Aligned-text rendering of Table II (paper vs. this code)."""
    return format_table(
        ["param", "meaning", "paper", "this reproduction"],
        table2_rows(),
        title="Table II — parameter settings",
    )
