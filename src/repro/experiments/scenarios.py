"""Experiment scenarios mirroring the paper's two testbeds (Table II).

A :class:`Scenario` bundles a cluster profile, an evaluation trace
recipe, the SLO spec and the history trace used for the offline
(training) phase.  Two builders mirror Section IV: :func:`cluster_scenario`
(the Clemson Palmetto testbed of Section IV-A) and :func:`ec2_scenario`
(the Amazon EC2 testbed of Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..cluster.profiles import ClusterProfile
from ..cluster.shards import ScaleConfig
from ..cluster.simulator import SimulationConfig
from ..cluster.slo import SloSpec
from ..faults.plan import FaultPlan, build_fault_plan, build_revocation_storm
from ..trace.filters import remove_long_lived
from ..trace.generator import GoogleTraceGenerator, TraceConfig
from ..trace.records import Trace
from ..trace.transform import resample_trace
from .workloads.diurnal import DiurnalPattern, apply_diurnal
from .workloads.pipeline import PipelineSpec

__all__ = [
    "Scenario",
    "cluster_scenario",
    "ec2_scenario",
    "pipeline_scenario",
    "diurnal_scenario",
    "storm_scenario",
    "fault_sweep_scenarios",
    "storm_sweep_scenarios",
    "SCENARIO_FAMILIES",
    "JOB_COUNTS",
    "FAULT_INTENSITIES",
]

#: The paper's job-count sweep: "we varied the number of jobs from 50 to
#: 300 with step size of 50" (Section IV).
JOB_COUNTS: tuple[int, ...] = (50, 100, 150, 200, 250, 300)

#: Arrival span (seconds) the evaluation packs each job batch into; a
#: fixed span makes the job count control cluster density, the regime of
#: the paper's sweeps.
DEFAULT_ARRIVAL_SPAN_S: float = 100.0

#: Jobs in the historical (training) trace for the offline phase.
DEFAULT_HISTORY_JOBS: int = 400

#: Default fault-intensity sweep (0 = the fault-free control point).
FAULT_INTENSITIES: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)

#: Scenario-family names the CLI's ``--scenario`` flag accepts.
SCENARIO_FAMILIES: tuple[str, ...] = ("pipeline", "diurnal", "storm")


@dataclass(frozen=True)
class Scenario:
    """One runnable experiment setting."""

    name: str
    profile: ClusterProfile
    n_jobs: int
    trace_config: TraceConfig
    history_config: TraceConfig
    sim_config: SimulationConfig = field(default_factory=SimulationConfig)
    #: Size of the master job population the evaluation subsamples.
    #: Every job count of a sweep draws an evenly spaced subset of the
    #: *same* master trace, so the sweep varies density — not workload
    #: composition — exactly like replaying more/fewer jobs of one
    #: trace over the same interval.
    master_jobs: int = 300
    #: Optional deterministic fault schedule replayed against every
    #: scheduler that runs this scenario.  ``None`` (and the empty plan)
    #: mean a fault-free run, byte-identical to the pre-fault layer.
    fault_plan: FaultPlan | None = None
    #: Pipeline family: split the trace into phases submitted through
    #: the streaming kernel with the phase-N-completes-first DAG edge.
    pipeline: PipelineSpec | None = None
    #: Diurnal family: warp arrival times onto a day/night curve with
    #: flash-crowd spikes (applied inside :meth:`evaluation_trace`).
    arrival_pattern: DiurnalPattern | None = None

    def with_fault_plan(self, plan: FaultPlan | None) -> "Scenario":
        """A copy of this scenario running under ``plan`` (or without)."""
        return replace(self, fault_plan=plan)

    def with_scale(self, scale: "ScaleConfig | None") -> "Scenario":
        """A copy of this scenario under ``scale`` (None = unchanged).

        Folds the scale knobs into ``sim_config`` so they travel with
        the scenario through the runner, worker pools and the service
        daemon without any side channel.
        """
        if scale is None:
            return self
        return replace(self, sim_config=replace(self.sim_config, scale=scale))

    def evaluation_trace(self) -> Trace:
        """Generate, filter (short-lived only) and subsample the workload.

        Long-lived jobs are removed per Section IV; job count refers to
        jobs *after* filtering, so the generator is asked for extras.
        """
        cfg = self.trace_config
        master = max(self.master_jobs, self.n_jobs)
        # Over-generate so the post-filter count is reached exactly.
        raw_cfg = replace(
            cfg,
            n_jobs=max(int(master / max(cfg.short_fraction, 0.05)) + 10, 10),
        )
        raw = GoogleTraceGenerator(raw_cfg).generate()
        short = remove_long_lived(raw)
        records = list(short)[:master]
        if len(records) < master:
            raise RuntimeError(
                f"generator produced only {len(records)} short jobs "
                f"(needed {master}); raise short_fraction or n_jobs"
            )
        if self.n_jobs < master:
            idx = np.round(np.linspace(0, master - 1, self.n_jobs)).astype(int)
            records = [records[i] for i in idx]
        if self.arrival_pattern is not None:
            # Warp arrivals onto the diurnal clock *before* resampling:
            # the warp only rewrites submit times, the resample only
            # rewrites usage series, so the two compose cleanly.
            records = apply_diurnal(records, self.arrival_pattern)
        return resample_trace(
            Trace(records),
            self.sim_config.slot_duration_s,
            seed=cfg.seed,
        )
    def history_trace(self) -> Trace:
        """Historical trace for the offline (model-fitting) phase."""
        raw = GoogleTraceGenerator(self.history_config).generate()
        return resample_trace(
            remove_long_lived(raw),
            self.sim_config.slot_duration_s,
            seed=self.history_config.seed,
        )


#: Fluctuation parameters for 10-second sampling.  The paper's trace is
#: transformed to 10-second granularity and short jobs "exhibit frequent
#: fluctuations"; generating directly at the slot period puts the
#: burst/valley regimes on the timescale the predictors (and the HMM)
#: actually see.  Dwell means of ~8 slots put regime persistence at
#: ~80 s — mostly predictable at the 1-minute horizon from the recent
#: window, which is the paper's premise that deep learning *can* track
#: these fluctuations while pattern-assuming methods cannot.
_FINE_GRAIN = dict(
    sample_period_s=10.0,
    burst_prob=0.03,
    burst_mean_len=8.0,
    valley_prob=0.03,
    valley_mean_len=8.0,
    noise_sigma=0.03,
    long_pattern_period_s=600.0,
)


def _base_trace_config(n_jobs: int, seed: int) -> TraceConfig:
    return TraceConfig(
        n_jobs=n_jobs,
        arrival_span_s=DEFAULT_ARRIVAL_SPAN_S,
        short_fraction=0.92,
        seed=seed,
        **_FINE_GRAIN,
    )


def _history_config(seed: int) -> TraceConfig:
    # The historical trace spreads over a longer horizon (it is "the
    # Google trace", not the evaluation batch) but shares the workload
    # statistics; a distinct seed keeps it disjoint from evaluation.
    return TraceConfig(
        n_jobs=DEFAULT_HISTORY_JOBS,
        arrival_rate_per_s=0.2,
        short_fraction=0.92,
        seed=seed + 10_000,
        **_FINE_GRAIN,
    )


def cluster_scenario(
    n_jobs: int = 300,
    *,
    seed: int = 7,
    slo_slack: float = 1.2,
    profile: ClusterProfile | None = None,
) -> Scenario:
    """Section IV-A: the real-cluster testbed (Palmetto servers).

    The default uses 30 PMs (Table II's server range is 30-50): the
    regime in which 300 jobs press against cluster capacity, which is
    where opportunistic reuse pays (DESIGN.md §6).
    """
    return Scenario(
        name=f"cluster-{n_jobs}jobs",
        profile=profile or ClusterProfile.palmetto(n_pms=30),
        n_jobs=n_jobs,
        trace_config=_base_trace_config(n_jobs, seed),
        history_config=_history_config(seed),
        sim_config=SimulationConfig(slo=SloSpec(slack_factor=slo_slack)),
    )


def fault_sweep_scenarios(
    base: Scenario,
    *,
    intensities: Sequence[float] = FAULT_INTENSITIES,
    seed: int = 0,
    n_slots: int = 400,
) -> list[Scenario]:
    """``base`` replayed under increasing fault intensity.

    Each sweep point pairs the *same* workload with a seeded
    :func:`~repro.faults.plan.build_fault_plan` of the given intensity
    (intensity ``0`` carries no plan — the fault-free control), so the
    sweep isolates the effect of churn on each scheduler.
    """
    out: list[Scenario] = []
    for intensity in intensities:
        plan = (
            build_fault_plan(seed=seed, n_slots=n_slots, intensity=intensity)
            if intensity > 0
            else None
        )
        out.append(
            replace(
                base,
                name=f"{base.name}-faults{intensity:g}",
                fault_plan=plan,
            )
        )
    return out


def ec2_scenario(
    n_jobs: int = 300,
    *,
    seed: int = 7,
    slo_slack: float = 1.2,
    profile: ClusterProfile | None = None,
) -> Scenario:
    """Section IV-B: the Amazon EC2 testbed (30 nodes, higher RTT)."""
    return Scenario(
        name=f"ec2-{n_jobs}jobs",
        profile=profile or ClusterProfile.ec2(),
        n_jobs=n_jobs,
        trace_config=_base_trace_config(n_jobs, seed),
        history_config=_history_config(seed),
        sim_config=SimulationConfig(slo=SloSpec(slack_factor=slo_slack)),
    )


# ----------------------------------------------------------------------
# Scenario-zoo families (beyond the paper's steady arrival mix).
# ----------------------------------------------------------------------


def pipeline_scenario(
    n_jobs: int = 300,
    *,
    seed: int = 7,
    n_phases: int = 3,
    conflict_window_slots: int = 2,
    profile: ClusterProfile | None = None,
) -> Scenario:
    """DAG/pipeline family: phased submission with conflict windows."""
    base = cluster_scenario(n_jobs, seed=seed, profile=profile)
    return replace(
        base,
        name=f"pipeline-{n_phases}x-{n_jobs}jobs",
        pipeline=PipelineSpec(
            n_phases=n_phases,
            conflict_window_slots=conflict_window_slots,
        ),
    )


def diurnal_scenario(
    n_jobs: int = 300,
    *,
    seed: int = 7,
    pattern: DiurnalPattern | None = None,
    profile: ClusterProfile | None = None,
) -> Scenario:
    """Diurnal family: day/night arrival curve with flash-crowd spikes.

    The pattern's spike placement is seeded from the scenario seed by
    default, so the whole scenario stays a function of one seed.
    """
    base = cluster_scenario(n_jobs, seed=seed, profile=profile)
    return replace(
        base,
        name=f"diurnal-{n_jobs}jobs",
        arrival_pattern=pattern or DiurnalPattern(seed=seed),
    )


def storm_scenario(
    n_jobs: int = 300,
    *,
    seed: int = 7,
    intensity: float = 0.5,
    storm_seed: int = 0,
    n_slots: int = 400,
    profile: ClusterProfile | None = None,
) -> Scenario:
    """Spot-revocation-storm family: correlated VM-cohort loss.

    ``intensity 0`` carries no plan (the fault-free control point),
    mirroring :func:`fault_sweep_scenarios`.
    """
    base = cluster_scenario(n_jobs, seed=seed, profile=profile)
    plan = (
        build_revocation_storm(
            seed=storm_seed, n_slots=n_slots, intensity=intensity
        )
        if intensity > 0
        else None
    )
    return replace(
        base,
        name=f"storm-{intensity:g}-{n_jobs}jobs",
        fault_plan=plan,
    )


def storm_sweep_scenarios(
    base: Scenario,
    *,
    intensities: Sequence[float] = FAULT_INTENSITIES,
    seed: int = 0,
    n_slots: int = 400,
) -> list[Scenario]:
    """``base`` replayed under revocation storms of increasing intensity.

    The storm analogue of :func:`fault_sweep_scenarios`: same workload
    at every point, correlated :class:`~repro.faults.plan.RevocationWave`
    cohorts instead of independent faults (intensity ``0`` carries no
    plan — the fault-free control).
    """
    out: list[Scenario] = []
    for intensity in intensities:
        plan = (
            build_revocation_storm(
                seed=seed, n_slots=n_slots, intensity=intensity
            )
            if intensity > 0
            else None
        )
        out.append(
            replace(
                base,
                name=f"{base.name}-storm{intensity:g}",
                fault_plan=plan,
            )
        )
    return out
