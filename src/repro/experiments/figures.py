"""One entry point per figure of the paper's evaluation (Section IV).

Each ``figXX_*`` function reruns the corresponding experiment on the
simulated testbed and returns a :class:`FigureResult` whose series are
the same rows the paper plots.  The benchmark harness prints them and
checks the *shape* criteria of DESIGN.md §4 (who wins, monotonicity) —
absolute numbers are not expected to match the authors' hardware.

Cluster figures: 6 (prediction error), 7 (per-resource utilization),
8 (utilization vs SLO rate), 9 (SLO rate vs confidence level),
10 (allocation overhead).  EC2 figures 11-14 mirror 7-10 on the EC2
profile, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..baselines import CloudScaleScheduler, DraScheduler, RccrScheduler
from ..cluster.resources import ResourceKind
from ..cluster.scheduler import Scheduler
from ..cluster.simulator import SimulationResult
from ..core.config import CorpConfig
from ..core.corp import CorpScheduler
from ..trace.records import Trace
from .report import format_series_table, shape_check
from .runner import METHOD_ORDER, PredictorCache, run_scenario
from .scenarios import JOB_COUNTS, Scenario, cluster_scenario, ec2_scenario

__all__ = [
    "FigureResult",
    "fig06_prediction_error",
    "fig07_utilization",
    "fig08_utilization_vs_slo",
    "fig09_slo_vs_confidence",
    "fig10_overhead",
    "CONFIDENCE_LEVELS",
    "AGGRESSIVENESS_LEVELS",
]

#: The paper's confidence-level sweep (Table II: η 50%-90%).
CONFIDENCE_LEVELS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)

#: Aggressiveness sweep for Fig. 8/12 — the paper "varied the SLO
#: violation rate by varying the probability threshold P_th"; each
#: method's analogous conservatism knob is swept over these levels
#: (0 = most conservative, 1 = most aggressive).
AGGRESSIVENESS_LEVELS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass
class FigureResult:
    """A reproduced figure: x-axis, one series per method, expectations."""

    figure_id: str
    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]] = field(default_factory=dict)
    #: Expected ordering of methods at each x (smallest first) and the
    #: direction used by :func:`repro.experiments.report.shape_check`.
    expected_order: tuple[str, ...] = METHOD_ORDER
    expected_direction: str = "ascending"

    def add(self, method: str, value: float) -> None:
        """Append one point to a method's series."""
        self.series.setdefault(method, []).append(value)

    def to_table(self) -> str:
        """Aligned-text rendering of the figure's series."""
        return format_series_table(
            self.x_label, self.x_values, self.series, title=self.title
        )

    def shape_holds(self, min_points_fraction: float = 0.6) -> bool:
        """Whether the expected method ordering holds at enough points."""
        return shape_check(
            self.series,
            self.expected_order,
            direction=self.expected_direction,
            min_points_fraction=min_points_fraction,
        )


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------
def _scenario(testbed: str, n_jobs: int, seed: int) -> Scenario:
    if testbed == "cluster":
        return cluster_scenario(n_jobs, seed=seed)
    if testbed == "ec2":
        return ec2_scenario(n_jobs, seed=seed)
    raise ValueError(f"unknown testbed {testbed!r} (use 'cluster' or 'ec2')")


def _factories(
    history: Trace,
    cache: PredictorCache,
    *,
    confidence_level: float = 0.9,
    probability_threshold: float = 0.95,
    padding_percentile: float = 60.0,
    dra_headroom: float = 1.45,
    seed: int = 0,
) -> dict[str, Callable[[], Scheduler]]:
    """Method factories with per-method conservatism knobs exposed."""
    cfg = CorpConfig(
        confidence_level=confidence_level,
        probability_threshold=probability_threshold,
        seed=seed,
    )
    return {
        "CORP": lambda: CorpScheduler(cfg, predictor=cache.get(cfg, history)),
        "RCCR": lambda: RccrScheduler(
            confidence_level=confidence_level, seed=seed
        ),
        "CloudScale": lambda: CloudScaleScheduler(
            padding_percentile=padding_percentile, seed=seed
        ),
        "DRA": lambda: DraScheduler(headroom=dra_headroom, seed=seed),
    }


def _run_all(
    scenario: Scenario,
    factories: Mapping[str, Callable[[], Scheduler]],
    history: Trace,
    trace: Trace,
) -> dict[str, SimulationResult]:
    return {
        name: run_scenario(scenario, factories[name](), trace=trace, history=history)
        for name in METHOD_ORDER
    }


# ----------------------------------------------------------------------
# Fig. 6 — prediction error rate vs number of jobs (cluster)
# ----------------------------------------------------------------------
def fig06_prediction_error(
    *,
    testbed: str = "cluster",
    job_counts: Sequence[int] = JOB_COUNTS,
    seed: int = 7,
    repeats: int = 1,
    cache: PredictorCache | None = None,
) -> FigureResult:
    """Fig. 6: fraction of unused-resource predictions outside ``[0, ε)``.

    Expected shape: CORP < RCCR < CloudScale < DRA at each job count.
    ``repeats > 1`` averages each point over that many workload seeds.
    """
    cache = cache if cache is not None else PredictorCache()
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    result = FigureResult(
        figure_id="fig06",
        title="Fig. 6 — prediction error rate vs #jobs (cluster)",
        x_label="n_jobs",
        x_values=list(job_counts),
        expected_direction="ascending",
    )
    history = _scenario(testbed, job_counts[0], seed).history_trace()
    for n in job_counts:
        totals = {m: 0.0 for m in METHOD_ORDER}
        for rep in range(repeats):
            scenario = _scenario(testbed, n, seed + rep)
            trace = scenario.evaluation_trace()
            runs = _run_all(
                scenario, _factories(history, cache, seed=seed), history, trace
            )
            for method, run in runs.items():
                rate = run.prediction_error_rate
                totals[method] += float(rate) if rate is not None else 0.0
        for method in METHOD_ORDER:
            result.add(method, totals[method] / repeats)
    return result


# ----------------------------------------------------------------------
# Fig. 7 / Fig. 11 — resource utilization vs number of jobs
# ----------------------------------------------------------------------
def fig07_utilization(
    *,
    testbed: str = "cluster",
    job_counts: Sequence[int] = JOB_COUNTS,
    seed: int = 7,
    cache: PredictorCache | None = None,
) -> dict[str, FigureResult]:
    """Fig. 7 (cluster) / Fig. 11 (EC2): utilization vs #jobs.

    Returns one panel per resource type plus the weighted overall
    utilization.  Expected: CORP > RCCR > CloudScale > DRA; CPU/MEM
    utilization above storage utilization.
    """
    cache = cache if cache is not None else PredictorCache()
    fig_no = "fig07" if testbed == "cluster" else "fig11"
    panels: dict[str, FigureResult] = {}
    keys = [k.label.lower() for k in ResourceKind] + ["overall"]
    for key in keys:
        panels[key] = FigureResult(
            figure_id=f"{fig_no}_{key}",
            title=f"Fig. {fig_no[3:]} — {key} utilization vs #jobs ({testbed})",
            x_label="n_jobs",
            x_values=list(job_counts),
            expected_order=tuple(reversed(METHOD_ORDER)),
            expected_direction="ascending",  # DRA smallest ... CORP largest
        )
    history = _scenario(testbed, job_counts[0], seed).history_trace()
    for n in job_counts:
        scenario = _scenario(testbed, n, seed)
        trace = scenario.evaluation_trace()
        runs = _run_all(scenario, _factories(history, cache, seed=seed), history, trace)
        for method, run in runs.items():
            summary = run.summary()
            for kind in ResourceKind:
                key = kind.label.lower()
                panels[key].add(method, summary[f"utilization_{key}"])
            panels["overall"].add(method, summary["overall_utilization"])
    return panels


# ----------------------------------------------------------------------
# Fig. 8 / Fig. 12 — overall utilization vs SLO violation rate
# ----------------------------------------------------------------------
def fig08_utilization_vs_slo(
    *,
    testbed: str = "cluster",
    n_jobs: int = 300,
    levels: Sequence[float] = AGGRESSIVENESS_LEVELS,
    seed: int = 7,
    cache: PredictorCache | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 8 (cluster) / Fig. 12 (EC2): utilization-vs-SLO tradeoff.

    Sweeps each method's conservatism knob (the paper varies ``P_th``)
    and returns per-method ``(slo_violation_rate, overall_utilization)``
    pairs.  Expected: utilization increases with the tolerated violation
    rate, and at comparable violation rates CORP's utilization is
    highest.
    """
    cache = cache if cache is not None else PredictorCache()
    scenario = _scenario(testbed, n_jobs, seed)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    curves: dict[str, list[tuple[float, float]]] = {m: [] for m in METHOD_ORDER}
    for level in levels:
        factories = _factories(
            history,
            cache,
            # 0 = conservative, 1 = aggressive, per method:
            probability_threshold=0.99 - 0.49 * level,  # CORP P_th sweep
            confidence_level=max(0.95 - 0.45 * level, 0.5),
            padding_percentile=90.0 - 60.0 * level,
            dra_headroom=1.6 - 0.55 * level,
            seed=seed,
        )
        runs = _run_all(scenario, factories, history, trace)
        for method, run in runs.items():
            summary = run.summary()
            curves[method].append(
                (summary["slo_violation_rate"], summary["overall_utilization"])
            )
    return curves


# ----------------------------------------------------------------------
# Fig. 9 / Fig. 13 — SLO violation rate vs confidence level
# ----------------------------------------------------------------------
def fig09_slo_vs_confidence(
    *,
    testbed: str = "cluster",
    n_jobs: int = 300,
    levels: Sequence[float] = CONFIDENCE_LEVELS,
    seed: int = 7,
    cache: PredictorCache | None = None,
) -> FigureResult:
    """Fig. 9 (cluster) / Fig. 13 (EC2): SLO rate vs confidence level η.

    Expected: the violation rate decreases as η rises, and
    CORP < RCCR < CloudScale < DRA at each η.  Methods without a native
    η use their analogous conservatism knob (padding percentile for
    CloudScale, demand-estimate headroom for DRA), mapped so higher η
    means more conservative.
    """
    cache = cache if cache is not None else PredictorCache()
    fig_no = "fig09" if testbed == "cluster" else "fig13"
    result = FigureResult(
        figure_id=fig_no,
        title=f"Fig. {fig_no[3:]} — SLO violation rate vs confidence level ({testbed})",
        x_label="confidence",
        x_values=list(levels),
        expected_direction="ascending",
    )
    scenario = _scenario(testbed, n_jobs, seed)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    for eta in levels:
        factories = _factories(
            history,
            cache,
            confidence_level=eta,
            padding_percentile=40.0 + 55.0 * eta,
            dra_headroom=1.0 + 0.45 * eta,
            seed=seed,
        )
        runs = _run_all(scenario, factories, history, trace)
        for method, run in runs.items():
            result.add(method, run.summary()["slo_violation_rate"])
    return result


# ----------------------------------------------------------------------
# Fig. 10 / Fig. 14 — allocation overhead (latency for 300 jobs)
# ----------------------------------------------------------------------
def fig10_overhead(
    *,
    testbed: str = "cluster",
    n_jobs: int = 300,
    seed: int = 7,
    cache: PredictorCache | None = None,
) -> dict[str, float]:
    """Fig. 10 (cluster) / Fig. 14 (EC2): allocation latency, seconds.

    The latency is the measured decision-path compute time plus the
    modeled communication cost (operations × the profile's RTT); see
    DESIGN.md §2 for the substitution.  Expected: CORP slightly above
    the others (DNN+HMM inference), and every method's EC2 latency above
    its cluster latency (higher RTT).
    """
    cache = cache if cache is not None else PredictorCache()
    scenario = _scenario(testbed, n_jobs, seed)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    runs = _run_all(scenario, _factories(history, cache, seed=seed), history, trace)
    return {
        method: run.summary()["allocation_latency_s"]
        for method, run in runs.items()
    }
