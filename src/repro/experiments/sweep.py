"""Parameter-sweep utilities shared by the figure benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..cluster.simulator import SimulationResult

__all__ = ["SweepResult", "sweep", "average_summaries"]


@dataclass
class SweepResult:
    """Results of a 1-D parameter sweep for several methods.

    ``values[method][i]`` is the metric at ``x_values[i]``.
    """

    x_label: str
    x_values: list
    metric: str
    values: dict[str, list[float]] = field(default_factory=dict)

    def series(self) -> Mapping[str, Sequence[float]]:
        """Method → metric series over the sweep."""
        return self.values

    def add(self, method: str, value: float) -> None:
        """Append one swept value for a method."""
        self.values.setdefault(method, []).append(value)


def average_summaries(results: Iterable[SimulationResult], key: str) -> float:
    """Mean of one summary metric across repeated runs."""
    values = [r.summary()[key] for r in results]
    if not values:
        raise ValueError("no results to average")
    return float(np.mean(values))


def sweep(
    x_label: str,
    x_values: Sequence,
    metric: str,
    run: Callable[[object], Mapping[str, SimulationResult]],
) -> SweepResult:
    """Run ``run(x)`` for each x and collect one metric per method.

    ``run`` returns a method-name → :class:`SimulationResult` mapping,
    e.g. a :func:`repro.experiments.runner.run_methods` closure.
    """
    out = SweepResult(x_label=x_label, x_values=list(x_values), metric=metric)
    for x in x_values:
        results = run(x)
        for method, result in results.items():
            out.add(method, result.summary()[metric])
    return out
