"""Plain-text table rendering for the benchmark harness.

Every figure bench prints the same rows/series the paper reports, via
these helpers, so ``pytest benchmarks/ --benchmark-only`` regenerates a
readable version of the evaluation section.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series_table", "shape_check"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render an aligned text table."""
    def fmt(cell: object) -> str:
        """Render one cell (floats via ``float_fmt``)."""
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render one column per method over a swept x-axis (a paper figure)."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, title=title, float_fmt=float_fmt)


def shape_check(
    series: Mapping[str, Sequence[float]],
    order: Sequence[str],
    *,
    direction: str = "ascending",
    min_points_fraction: float = 0.6,
) -> bool:
    """Does the method ordering hold at most sweep points?

    ``order`` lists methods from smallest to largest expected value when
    ``direction='ascending'`` (reverse for 'descending').  Returns True
    when at least ``min_points_fraction`` of the sweep points respect
    every pairwise comparison — the "shape" criterion of DESIGN.md §4.
    """
    if direction not in ("ascending", "descending"):
        raise ValueError("direction must be 'ascending' or 'descending'")
    names = list(order)
    n_points = len(next(iter(series.values())))
    good = 0
    for i in range(n_points):
        values = [series[name][i] for name in names]
        ok = all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        if direction == "descending":
            ok = all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        good += ok
    return good >= min_points_fraction * n_points
