"""Mixed short + long-lived workload (extension).

Section IV removes long-lived jobs to stress the short-job challenge,
but notes that "CORP can also achieve good results using the original
Google trace because it can handle both long-lived and short-lived jobs
with deep learning and HMM model".  This experiment keeps the long jobs
in and verifies the claim: CORP's advantage over the baselines survives
when patterned long-running services share the cluster with patternless
short jobs.

Long jobs are scaled to 15–30 minutes (90–180 slots) with a 10-minute
periodic usage pattern so the experiment stays laptop-sized while
preserving the property that matters: their usage *has* a pattern.
"""

from __future__ import annotations

import dataclasses

from ..trace.generator import GoogleTraceGenerator
from ..trace.records import Trace
from ..trace.transform import resample_trace
from .runner import METHOD_ORDER, PredictorCache, default_schedulers, run_scenario
from .scenarios import Scenario, cluster_scenario

__all__ = ["mixed_scenario", "run_mixed_workload"]


def _mixed_config(cfg, *, short_fraction: float):
    return dataclasses.replace(
        cfg,
        short_fraction=short_fraction,
        long_duration_range_s=(900.0, 1800.0),
        long_pattern_period_s=600.0,
    )


def mixed_scenario(
    n_jobs: int = 200, *, seed: int = 7, short_fraction: float = 0.7
) -> Scenario:
    """A cluster scenario whose trace keeps its long-lived jobs."""
    base = cluster_scenario(n_jobs, seed=seed)
    return dataclasses.replace(
        base,
        name=f"mixed-{n_jobs}jobs",
        trace_config=_mixed_config(base.trace_config, short_fraction=short_fraction),
        history_config=_mixed_config(
            base.history_config, short_fraction=short_fraction
        ),
    )


def _unfiltered_trace(scenario: Scenario) -> Trace:
    """The evaluation trace *without* the short-only filter."""
    cfg = dataclasses.replace(scenario.trace_config, n_jobs=scenario.n_jobs)
    raw = GoogleTraceGenerator(cfg).generate()
    return resample_trace(
        raw, scenario.sim_config.slot_duration_s, seed=cfg.seed
    )


def run_mixed_workload(
    *,
    n_jobs: int = 200,
    seed: int = 7,
    short_fraction: float = 0.7,
    cache: PredictorCache | None = None,
    methods=("CORP", "RCCR", "CloudScale", "DRA"),
) -> dict[str, dict[str, float]]:
    """Run the methods on the unfiltered (short + long) workload.

    The history trace is also unfiltered, so CORP's DNN/HMM train on
    both populations — the paper's "original Google trace" setting.
    Returns ``method → summary`` with a ``riders`` count added.
    """
    cache = cache if cache is not None else PredictorCache()
    scenario = mixed_scenario(n_jobs, seed=seed, short_fraction=short_fraction)
    trace = _unfiltered_trace(scenario)
    history_cfg = dataclasses.replace(scenario.history_config)
    history = resample_trace(
        GoogleTraceGenerator(history_cfg).generate(),
        scenario.sim_config.slot_duration_s,
        seed=history_cfg.seed,
    )
    factories = default_schedulers(
        history=history, predictor_cache=cache, seed=seed
    )
    out: dict[str, dict[str, float]] = {}
    for name in methods:
        if name not in METHOD_ORDER:
            raise ValueError(f"unknown method {name!r}")
        result = run_scenario(
            scenario, factories[name](), trace=trace, history=history
        )
        summary = result.summary()
        summary["riders"] = float(sum(1 for j in result.jobs if j.opportunistic))
        summary["n_long"] = float(sum(1 for j in result.jobs if not j.record.is_short))
        out[name] = summary
    return out
