"""Dependency-free SVG rendering of figure results.

Turns a :class:`~repro.experiments.figures.FigureResult` (or any
method → series mapping) into a standalone SVG line chart, so the
reproduced figures can be *looked at*, not just read as tables — without
pulling matplotlib into an otherwise NumPy-only dependency set.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["render_line_chart", "save_figure_svg"]

#: Method → stroke color, matching the presentation order used everywhere.
_PALETTE = ("#1b6ca8", "#e08214", "#35978f", "#c51b7d", "#7570b3", "#666666")

_WIDTH, _HEIGHT = 640, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 150, 50, 55


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def render_line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one line per series; returns the SVG document as a string."""
    if not series:
        raise ValueError("no series to plot")
    xs = [float(x) for x in x_values]
    if len(xs) < 1:
        raise ValueError("need at least one x value")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} points for {len(xs)} x values"
            )

    all_y = [float(v) for values in series.values() for v in values]
    y_lo, y_hi = min(all_y + [0.0]), max(all_y)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    y_hi *= 1.05
    x_lo, x_hi = min(xs), max(xs)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{_escape(title)}</text>',
    ]

    # axes + gridlines + tick labels
    for y in _ticks(y_lo, y_hi):
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{py(y):.1f}" '
            f'x2="{_MARGIN_L + plot_w}" y2="{py(y):.1f}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{py(y) + 4:.1f}" '
            f'text-anchor="end">{y:.2f}</text>'
        )
    for x in xs:
        parts.append(
            f'<text x="{px(x):.1f}" y="{_MARGIN_T + plot_h + 18}" '
            f'text-anchor="middle">{x:g}</text>'
        )
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" x2="{_MARGIN_L}" '
        f'y2="{_MARGIN_T + plot_h}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T + plot_h}" '
        f'x2="{_MARGIN_L + plot_w}" y2="{_MARGIN_T + plot_h}" stroke="black"/>'
    )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2}" y="{_HEIGHT - 14}" '
        f'text-anchor="middle">{_escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="18" y="{_MARGIN_T + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 18 {_MARGIN_T + plot_h / 2})">'
        f"{_escape(y_label)}</text>"
    )

    # series
    for i, (name, values) in enumerate(series.items()):
        color = _PALETTE[i % len(_PALETTE)]
        points = " ".join(
            f"{px(x):.1f},{py(float(v)):.1f}" for x, v in zip(xs, values)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{points}"/>'
        )
        for x, v in zip(xs, values):
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(float(v)):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        legend_y = _MARGIN_T + 10 + 20 * i
        legend_x = _MARGIN_L + plot_w + 14
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 22}" '
            f'y2="{legend_y}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{legend_x + 28}" y="{legend_y + 4}">{_escape(name)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_figure_svg(figure_result, path: str | Path, *, y_label: str = "") -> Path:
    """Write a :class:`FigureResult` as an SVG chart; returns the path."""
    path = Path(path)
    svg = render_line_chart(
        figure_result.x_values,
        figure_result.series,
        title=figure_result.title,
        x_label=figure_result.x_label,
        y_label=y_label,
    )
    path.write_text(svg, encoding="utf-8")
    return path
