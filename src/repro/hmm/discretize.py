"""Symbolization of unused-resource series (paper Section III-A.1b).

From historical data the paper takes the minimum, mean and maximum of
the unused resource (``min``, ``m``, ``max``) and splits ``[min, max]``
into three bands with thresholds

.. math::

    t_1 = min + \\tfrac12 (m - min), \\qquad t_2 = m + \\tfrac12 (max - m)

Observation symbols are assigned from the *fluctuation range*
``Δ_j`` of each window (max − min of the unused amount inside the
window): ``Δ_j ≤ t_1`` → **valley**, ``t_1 < Δ_j < t_2`` → **center**,
``Δ_j ≥ t_2`` → **peak** — exactly the rule below Eq. 8 of the paper.

Symbol indices follow :data:`repro.hmm.model.SYMBOL_NAMES`:
0 = peak, 1 = center, 2 = valley.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ThresholdBands", "PEAK", "CENTER", "VALLEY", "windowed_observations"]

PEAK: int = 0
CENTER: int = 1
VALLEY: int = 2


@dataclass(frozen=True)
class ThresholdBands:
    """Historical min/mean/max and the derived band thresholds."""

    minimum: float
    mean: float
    maximum: float

    def __post_init__(self) -> None:
        if not (self.minimum <= self.mean <= self.maximum):
            raise ValueError(
                f"need min <= mean <= max, got "
                f"({self.minimum}, {self.mean}, {self.maximum})"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_history(cls, values: np.ndarray) -> "ThresholdBands":
        """Fit the bands on a 1-D history of unused-resource amounts."""
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0:
            raise ValueError("history is empty")
        if np.any(~np.isfinite(v)):
            raise ValueError("history contains non-finite values")
        lo, hi = float(v.min()), float(v.max())
        # Pairwise-summation rounding can push the computed mean a few
        # ulps outside [min, max] on near-constant data; clamp it.
        mean = float(min(max(float(v.mean()), lo), hi))
        return cls(minimum=lo, mean=mean, maximum=hi)

    # ------------------------------------------------------------------
    @property
    def lower_threshold(self) -> float:
        """``t_1 = min + ½ (m − min)``."""
        return self.minimum + 0.5 * (self.mean - self.minimum)

    @property
    def upper_threshold(self) -> float:
        """``t_2 = m + ½ (max − m)``."""
        return self.mean + 0.5 * (self.maximum - self.mean)

    def correction_magnitude(self) -> float:
        """The paper's peak/valley adjustment ``min(h − m, m − l)``.

        ``h``/``l`` are the highest/lowest unused amounts in the
        historical period and ``m`` their mean; ``min`` keeps the
        correction conservative (Section III-A.1b's stated rationale).
        """
        return min(self.maximum - self.mean, self.mean - self.minimum)

    # ------------------------------------------------------------------
    def symbolize(self, value: float) -> int:
        """Band of a single fluctuation-range value."""
        if value <= self.lower_threshold:
            return VALLEY
        if value < self.upper_threshold:
            return CENTER
        return PEAK

    def symbolize_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`symbolize` over an array."""
        v = np.asarray(values, dtype=np.float64)
        out = np.full(v.shape, CENTER, dtype=np.int64)
        out[v <= self.lower_threshold] = VALLEY
        out[v >= self.upper_threshold] = PEAK
        return out


def windowed_observations(
    series: np.ndarray, window: int, bands: ThresholdBands
) -> np.ndarray:
    """Observation sequence from a raw unused-resource series.

    The paper treats the interval between consecutive observation slots
    as a window and symbolizes each window's range
    ``Δ_j = max(window) − min(window)``.  Returns one symbol per full
    window (``len(series) // window`` symbols).
    """
    s = np.asarray(series, dtype=np.float64).ravel()
    if window < 1:
        raise ValueError("window must be >= 1")
    n_windows = s.size // window
    if n_windows == 0:
        return np.zeros(0, dtype=np.int64)
    trimmed = s[: n_windows * window].reshape(n_windows, window)
    deltas = trimmed.max(axis=1) - trimmed.min(axis=1)
    return bands.symbolize_many(deltas)
