"""Hidden Markov Model container ``λ = (A, B, π)`` (paper Eq. 9-11).

The paper's fluctuation model has ``H = 3`` hidden states —
over-provisioning (OP), normal-provisioning (NP), under-provisioning
(UP) — and ``M = 3`` observation symbols — peak, center, valley
(Section III-A.1b, Fig. 3).  The container is generic in ``H``/``M``;
the CORP defaults are exposed as :func:`default_fluctuation_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "HiddenMarkovModel",
    "default_fluctuation_model",
    "STATE_NAMES",
    "SYMBOL_NAMES",
]

#: Hidden-state labels of the paper's model (Fig. 3).
STATE_NAMES: tuple[str, ...] = ("OP", "NP", "UP")
#: Observation-symbol labels; index 0/1/2 = peak/center/valley, matching
#: the paper's "1, 2, 3 represent 'peak', 'center' and 'valley'".
SYMBOL_NAMES: tuple[str, ...] = ("peak", "center", "valley")


def _validate_stochastic(matrix: np.ndarray, name: str, axis: int = -1) -> None:
    if np.any(matrix < -1e-12):
        raise ValueError(f"{name} has negative entries")
    sums = matrix.sum(axis=axis)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise ValueError(f"{name} rows must sum to 1 (got {sums})")


@dataclass
class HiddenMarkovModel:
    """``λ = (A, B, π)``.

    Attributes
    ----------
    transition:
        ``A[i, j] = P(q_{t+1} = S_j | q_t = S_i)`` (Eq. 9), shape (H, H).
    emission:
        ``B[j, k] = P(O_t = k | q_t = S_j)`` (Eq. 10), shape (H, M).
    initial:
        ``π_i = P(q_1 = S_i)`` (Eq. 11), shape (H,).
    """

    transition: np.ndarray
    emission: np.ndarray
    initial: np.ndarray

    def __post_init__(self) -> None:
        self.transition = np.asarray(self.transition, dtype=np.float64)
        self.emission = np.asarray(self.emission, dtype=np.float64)
        self.initial = np.asarray(self.initial, dtype=np.float64)
        H = self.transition.shape[0]
        if self.transition.shape != (H, H):
            raise ValueError("transition matrix must be square")
        if self.emission.ndim != 2 or self.emission.shape[0] != H:
            raise ValueError("emission must be (H, M)")
        if self.initial.shape != (H,):
            raise ValueError("initial must be (H,)")
        _validate_stochastic(self.transition, "transition")
        _validate_stochastic(self.emission, "emission")
        _validate_stochastic(self.initial[None, :], "initial")

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """``H`` of Eq. 9 (paper: 3)."""
        return self.transition.shape[0]

    @property
    def n_symbols(self) -> int:
        """``M`` of Eq. 10 (paper: 3)."""
        return self.emission.shape[1]

    def validate_observations(self, observations: np.ndarray) -> np.ndarray:
        """Coerce and range-check an observation sequence."""
        obs = np.asarray(observations, dtype=np.int64).ravel()
        if obs.size == 0:
            raise ValueError("observation sequence is empty")
        if obs.min() < 0 or obs.max() >= self.n_symbols:
            raise ValueError(
                f"observations must be in [0, {self.n_symbols}); "
                f"got range [{obs.min()}, {obs.max()}]"
            )
        return obs

    def copy(self) -> "HiddenMarkovModel":
        """Deep copy of λ = (A, B, π)."""
        return HiddenMarkovModel(
            self.transition.copy(), self.emission.copy(), self.initial.copy()
        )


def default_fluctuation_model(seed: int | None = None) -> HiddenMarkovModel:
    """The paper's 3-state/3-symbol model with a sensible starting point.

    States are sticky (fluctuation regimes persist for a few windows) and
    each state prefers "its" symbol: OP→peak of unused resource,
    NP→center, UP→valley.  Baum-Welch re-estimation refines these from
    data; a seed perturbs the start to break ties.
    """
    A = np.array(
        [
            [0.6, 0.3, 0.1],
            [0.2, 0.6, 0.2],
            [0.1, 0.3, 0.6],
        ]
    )
    B = np.array(
        [
            [0.7, 0.2, 0.1],
            [0.15, 0.7, 0.15],
            [0.1, 0.2, 0.7],
        ]
    )
    pi = np.array([0.25, 0.5, 0.25])
    if seed is not None:
        rng = np.random.default_rng(seed)
        A = A + rng.uniform(0.0, 0.02, A.shape)
        B = B + rng.uniform(0.0, 0.02, B.shape)
        A /= A.sum(axis=1, keepdims=True)
        B /= B.sum(axis=1, keepdims=True)
    return HiddenMarkovModel(A, B, pi)
