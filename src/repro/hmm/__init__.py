"""Hidden Markov Model substrate (paper Section III-A.1b, Eq. 9-17).

From-scratch scaled forward-backward, Viterbi decoding, Baum-Welch
re-estimation, peak/center/valley symbolization and the next-fluctuation
predictor CORP uses to correct its DNN forecasts.
"""

from .baum_welch import BaumWelchConfig, BaumWelchResult, baum_welch
from .discretize import (
    CENTER,
    PEAK,
    VALLEY,
    ThresholdBands,
    windowed_observations,
)
from .fluctuation import FluctuationPredictor, SymbolizeMode
from .forward_backward import (
    ForwardBackwardResult,
    forward_backward,
    sequence_log_likelihood,
)
from .model import (
    STATE_NAMES,
    SYMBOL_NAMES,
    HiddenMarkovModel,
    default_fluctuation_model,
)
from .viterbi import ViterbiResult, map_states, viterbi

__all__ = [
    "BaumWelchConfig",
    "BaumWelchResult",
    "baum_welch",
    "CENTER",
    "PEAK",
    "VALLEY",
    "ThresholdBands",
    "windowed_observations",
    "FluctuationPredictor",
    "SymbolizeMode",
    "ForwardBackwardResult",
    "forward_backward",
    "sequence_log_likelihood",
    "STATE_NAMES",
    "SYMBOL_NAMES",
    "HiddenMarkovModel",
    "default_fluctuation_model",
    "ViterbiResult",
    "map_states",
    "viterbi",
]
