"""Scaled forward-backward recursions (paper Eq. 12-15).

Computes the forward variable ``α_t(i) = P(O_1..O_t, q_t = S_i | λ)``
(Eq. 14), the backward variable ``β_t(i)`` (Eq. 15) and the state
posterior ``γ_t(i) = α_t(i) β_t(i) / P(O | λ)`` (Eq. 13), using
per-step scaling [Rabiner 1989, the paper's ref 29] so long sequences do
not underflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import HiddenMarkovModel

__all__ = ["ForwardBackwardResult", "forward_backward", "sequence_log_likelihood"]


@dataclass(frozen=True)
class ForwardBackwardResult:
    """Scaled recursions plus derived quantities.

    ``alpha``/``beta`` are the *scaled* variables (each forward row sums
    to 1); ``scales[t]`` is the normalizer of step ``t``, so the sequence
    log-likelihood is ``sum(log(scales))``.  ``gamma`` is the exact state
    posterior of Eq. 13 (scaling cancels).
    """

    alpha: np.ndarray  # (T, H) scaled forward variables
    beta: np.ndarray   # (T, H) scaled backward variables
    gamma: np.ndarray  # (T, H) state posteriors (Eq. 13)
    scales: np.ndarray  # (T,) per-step normalizers
    log_likelihood: float


def forward_backward(
    model: HiddenMarkovModel, observations: np.ndarray
) -> ForwardBackwardResult:
    """Run the scaled α/β recursions over an observation sequence."""
    obs = model.validate_observations(observations)
    T = obs.size
    H = model.n_states
    A = model.transition
    B = model.emission
    alpha = np.empty((T, H))
    beta = np.empty((T, H))
    scales = np.empty(T)

    # --- forward (Eq. 14, induction per Rabiner) -----------------------
    alpha[0] = model.initial * B[:, obs[0]]
    scales[0] = alpha[0].sum()
    if scales[0] <= 0.0:
        raise ValueError("observation impossible under the model (zero forward mass)")
    alpha[0] /= scales[0]
    for t in range(1, T):
        alpha[t] = (alpha[t - 1] @ A) * B[:, obs[t]]
        scales[t] = alpha[t].sum()
        if scales[t] <= 0.0:
            raise ValueError(
                f"observation at t={t} impossible under the model"
            )
        alpha[t] /= scales[t]

    # --- backward (Eq. 15), scaled with the same normalizers ----------
    beta[T - 1] = 1.0
    for t in range(T - 2, -1, -1):
        beta[t] = (A * B[:, obs[t + 1]]) @ beta[t + 1]
        beta[t] /= scales[t + 1]

    # --- posterior (Eq. 13) --------------------------------------------
    gamma = alpha * beta
    gamma /= gamma.sum(axis=1, keepdims=True)

    return ForwardBackwardResult(
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        scales=scales,
        log_likelihood=float(np.log(scales).sum()),
    )


def sequence_log_likelihood(
    model: HiddenMarkovModel, observations: np.ndarray
) -> float:
    """``log P(O | λ)`` via the forward recursion only."""
    obs = model.validate_observations(observations)
    A = model.transition
    B = model.emission
    alpha = model.initial * B[:, obs[0]]
    total = 0.0
    s = alpha.sum()
    if s <= 0.0:
        return float("-inf")
    alpha /= s
    total += np.log(s)
    for t in range(1, obs.size):
        alpha = (alpha @ A) * B[:, obs[t]]
        s = alpha.sum()
        if s <= 0.0:
            return float("-inf")
        alpha /= s
        total += np.log(s)
    return float(total)
