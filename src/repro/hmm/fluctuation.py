"""HMM-based fluctuation prediction of unused resource (Section III-A.1b).

Pipeline: symbolize historical unused-resource series into
peak/center/valley observations, fit ``λ = (A, B, π)`` by Baum-Welch,
then at prediction time decode the recent observation window with
Viterbi and estimate the next symbol's distribution (Eq. 17):

.. math::

    E_{P_{T+1}}(k) = \\sum_j P(q_{T+1} = S_j \\mid q_T = q^*_L)\\, b_j(k)

The predicted symbol is the arg-max; CORP then adjusts the DNN's
prediction by ``± min(h − m, m − l)`` for peak/valley symbols.

Two symbolization modes are supported:

* ``"range"`` — the paper's literal rule: symbolize each window's
  fluctuation range ``Δ_j``.
* ``"level"`` (default) — symbolize each window's *mean level* against
  the same bands.  This makes the peak/valley correction direction
  semantically consistent (a "peak" symbol means the unused amount is
  high, so the prediction is adjusted up), and is what the ablation
  benchmark compares against the literal rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from .baum_welch import BaumWelchConfig, baum_welch
from .discretize import CENTER, PEAK, VALLEY, ThresholdBands, windowed_observations
from .model import HiddenMarkovModel, default_fluctuation_model
from .viterbi import viterbi

__all__ = ["FluctuationPredictor", "SymbolizeMode"]

SymbolizeMode = Literal["range", "level"]


def _level_observations(
    series: np.ndarray, window: int, bands: ThresholdBands
) -> np.ndarray:
    """Symbolize each window's mean level (the ``"level"`` mode)."""
    s = np.asarray(series, dtype=np.float64).ravel()
    n_windows = s.size // window
    if n_windows == 0:
        return np.zeros(0, dtype=np.int64)
    means = s[: n_windows * window].reshape(n_windows, window).mean(axis=1)
    return bands.symbolize_many(means)


@dataclass
class FluctuationPredictor:
    """Fit-once, predict-many fluctuation model for one resource type."""

    window: int = 6
    mode: SymbolizeMode = "level"
    seed: int = 0
    model: HiddenMarkovModel | None = None
    bands: ThresholdBands | None = None
    #: ``min(h − m, m − l)`` where h/m/l are the highest/mean/lowest
    #: unused amounts *within a period* (the paper's wording) — computed
    #: as medians of per-window amplitudes over the training histories,
    #: so the correction is scaled to typical window fluctuations rather
    #: than global extremes.
    correction_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.mode not in ("range", "level"):
            raise ValueError(f"unknown mode {self.mode!r}")

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether both the HMM and the bands have been fitted."""
        return self.model is not None and self.bands is not None

    def _observe(self, series: np.ndarray) -> np.ndarray:
        assert self.bands is not None
        if self.mode == "range":
            return windowed_observations(series, self.window, self.bands)
        return _level_observations(series, self.window, self.bands)

    # ------------------------------------------------------------------
    def fit(
        self,
        histories: Sequence[np.ndarray],
        *,
        em_config: BaumWelchConfig | None = None,
        init_model: HiddenMarkovModel | None = None,
    ) -> "FluctuationPredictor":
        """Fit bands + HMM on historical unused-resource series.

        Each element of ``histories`` is one job's (or VM's) 1-D unused
        series; bands are fitted on the pooled values, the HMM on the
        per-series observation sequences.

        ``init_model`` warm-starts Baum-Welch from a previously fitted
        ``λ = (A, B, π)`` instead of the seeded default — EM's
        log-likelihood convergence check then stops after the few
        iterations the shifted data actually needs.  The donor is
        copied, never mutated.
        """
        series_list = [np.asarray(h, dtype=np.float64).ravel() for h in histories]
        series_list = [s for s in series_list if s.size > 0]
        if not series_list:
            raise ValueError("no historical data to fit on")
        pooled = np.concatenate(series_list)
        self.bands = ThresholdBands.from_history(pooled)
        self.correction_scale = self._windowed_correction_scale(series_list)
        sequences = [
            obs for s in series_list
            if (obs := self._observe(s)).size >= 2
        ]
        if init_model is not None:
            self.model = HiddenMarkovModel(
                init_model.transition.copy(),
                init_model.emission.copy(),
                init_model.initial.copy(),
            )
        else:
            self.model = default_fluctuation_model(seed=self.seed)
        if sequences:
            result = baum_welch(self.model, sequences, em_config)
            self.model = result.model
        return self

    def _windowed_correction_scale(self, series_list: list[np.ndarray]) -> float:
        """Median per-window ``h − m`` and ``m − l``, then their min."""
        highs: list[float] = []
        lows: list[float] = []
        for s in series_list:
            n_windows = s.size // self.window
            if n_windows == 0:
                continue
            trimmed = s[: n_windows * self.window].reshape(n_windows, self.window)
            means = trimmed.mean(axis=1)
            highs.extend(trimmed.max(axis=1) - means)
            lows.extend(means - trimmed.min(axis=1))
        if not highs:
            return 0.0
        return float(min(np.median(highs), np.median(lows)))

    # ------------------------------------------------------------------
    def predict_next_symbol(self, recent: np.ndarray) -> int:
        """Predict the next window's symbol from a recent unused series.

        Decodes the recent observations with Viterbi, takes the last
        decoded state ``q*_L`` and applies Eq. 17.  With no usable recent
        observations, returns CENTER (no correction applied).
        """
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        assert self.model is not None
        obs = self._observe(np.asarray(recent, dtype=np.float64))
        if obs.size == 0:
            return CENTER
        path = viterbi(self.model, obs)
        return int(self.next_symbol_distribution(int(path.states[-1])).argmax())

    def next_symbol_distribution(self, last_state: int) -> np.ndarray:
        """Eq. 17's ``E_{P_{T+1}}(k)`` given the last decoded state."""
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        assert self.model is not None
        if not 0 <= last_state < self.model.n_states:
            raise ValueError(f"state index {last_state} out of range")
        # Σ_j P(q_{T+1}=S_j | q_T) · b_j(k) — one matrix-vector product.
        return self.model.transition[last_state] @ self.model.emission

    # ------------------------------------------------------------------
    def correction(self, symbol: int) -> float:
        """Signed adjustment for a predicted symbol (Section III-A.1b).

        ``+min(h−m, m−l)`` for a peak of unused resource, the negative
        for a valley, zero for center.
        """
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        assert self.bands is not None
        magnitude = self.correction_scale
        if symbol == PEAK:
            return magnitude
        if symbol == VALLEY:
            return -magnitude
        if symbol == CENTER:
            return 0.0
        raise ValueError(f"unknown symbol {symbol}")
