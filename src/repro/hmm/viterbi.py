"""Viterbi decoding: the single best state sequence.

Section III-A.1b: "In implementation, we use [the] Viterbi algorithm to
find the single best state sequence (path) ... i.e., maximizing
``P(Q, O | λ)`` which is equivalent to maximizing ``P(Q | O, λ)``."
Also provides the per-step MAP decoder of Eq. 16 (argmax of γ) for the
tests that contrast the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .forward_backward import forward_backward
from .model import HiddenMarkovModel

__all__ = ["ViterbiResult", "viterbi", "map_states"]


@dataclass(frozen=True)
class ViterbiResult:
    """Best path and its joint log-probability ``log P(Q*, O | λ)``."""

    states: np.ndarray  # (T,) int state indices
    log_probability: float


def viterbi(model: HiddenMarkovModel, observations: np.ndarray) -> ViterbiResult:
    """Most likely hidden state sequence (log-space, no underflow)."""
    obs = model.validate_observations(observations)
    T = obs.size
    H = model.n_states
    with np.errstate(divide="ignore"):
        logA = np.log(model.transition)
        logB = np.log(model.emission)
        logpi = np.log(model.initial)

    delta = np.empty((T, H))
    psi = np.zeros((T, H), dtype=np.int64)
    delta[0] = logpi + logB[:, obs[0]]
    for t in range(1, T):
        # candidate[i, j] = delta[t-1, i] + logA[i, j]
        candidate = delta[t - 1][:, None] + logA
        psi[t] = candidate.argmax(axis=0)
        delta[t] = candidate[psi[t], np.arange(H)] + logB[:, obs[t]]

    states = np.empty(T, dtype=np.int64)
    states[T - 1] = int(delta[T - 1].argmax())
    for t in range(T - 2, -1, -1):
        states[t] = psi[t + 1, states[t + 1]]
    return ViterbiResult(states=states, log_probability=float(delta[T - 1].max()))


def map_states(model: HiddenMarkovModel, observations: np.ndarray) -> np.ndarray:
    """Eq. 16: per-step individually most likely states (argmax of γ).

    Maximizes the *expected number of correct states*; unlike Viterbi the
    resulting sequence may traverse zero-probability transitions.
    """
    result = forward_backward(model, observations)
    return result.gamma.argmax(axis=1)
