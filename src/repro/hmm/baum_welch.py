"""Baum-Welch re-estimation of ``A, B, π``.

Section III-A.1b: "we use the method in [30] to re-estimate the
parameters A, B, π" — [30] is Stamp's *A Revealing Introduction to
Hidden Markov Models*, i.e. standard scaled Baum-Welch EM.  Supports
multiple observation sequences (each job contributes one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .forward_backward import forward_backward
from .model import HiddenMarkovModel

__all__ = ["BaumWelchConfig", "BaumWelchResult", "baum_welch"]


@dataclass(frozen=True)
class BaumWelchConfig:
    """EM loop knobs."""

    max_iterations: int = 50
    #: Stop when the total log-likelihood improves by less than this.
    tolerance: float = 1e-4
    #: Dirichlet-style smoothing added to every accumulated count so no
    #: probability collapses to exactly zero (keeps Viterbi/forward well
    #: defined on unseen symbols).
    smoothing: float = 1e-6

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.smoothing < 0:
            raise ValueError("smoothing must be non-negative")


@dataclass
class BaumWelchResult:
    """Fitted model and the EM trajectory."""

    model: HiddenMarkovModel
    log_likelihoods: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def n_iterations(self) -> int:
        """EM iterations actually run."""
        return len(self.log_likelihoods)


def _em_step(
    model: HiddenMarkovModel,
    sequences: Sequence[np.ndarray],
    smoothing: float,
) -> tuple[HiddenMarkovModel, float]:
    """One EM iteration over all sequences; returns (new model, total LL)."""
    H = model.n_states
    M = model.n_symbols
    A = model.transition
    B = model.emission

    trans_num = np.full((H, H), smoothing)
    emit_num = np.full((H, M), smoothing)
    gamma_sum_not_last = np.full(H, smoothing * H)
    gamma_sum_all = np.full(H, smoothing * M)
    pi_acc = np.full(H, smoothing)
    total_ll = 0.0

    for seq in sequences:
        obs = model.validate_observations(seq)
        fb = forward_backward(model, obs)
        total_ll += fb.log_likelihood
        T = obs.size
        gamma = fb.gamma
        pi_acc += gamma[0]
        if T > 1:
            # ξ_t(i, j) ∝ α_t(i) A_ij B_j(O_{t+1}) β_{t+1}(j); accumulate
            # its sum over t with one einsum instead of a Python loop.
            b_next = B[:, obs[1:]].T          # (T-1, H)
            weighted = fb.beta[1:] * b_next / fb.scales[1:, None]
            trans_num += A * np.einsum("ti,tj->ij", fb.alpha[:-1], weighted)
            gamma_sum_not_last += gamma[:-1].sum(axis=0)
        gamma_sum_all += gamma.sum(axis=0)
        np.add.at(emit_num.T, obs, gamma)  # emit_num[j, k] += Σ_{t: O_t=k} γ_t(j)

    n_seq = len(sequences)
    new_A = trans_num / gamma_sum_not_last[:, None]
    new_B = emit_num / gamma_sum_all[:, None]
    new_pi = pi_acc / (n_seq + smoothing * H)
    # Renormalize against accumulated smoothing drift.
    new_A /= new_A.sum(axis=1, keepdims=True)
    new_B /= new_B.sum(axis=1, keepdims=True)
    new_pi /= new_pi.sum()
    return HiddenMarkovModel(new_A, new_B, new_pi), total_ll


def baum_welch(
    model: HiddenMarkovModel,
    sequences: Sequence[np.ndarray] | np.ndarray,
    config: BaumWelchConfig | None = None,
) -> BaumWelchResult:
    """Fit ``model`` to one or more observation sequences by EM.

    The returned model is the final iterate; ``log_likelihoods[i]`` is
    the data log-likelihood *under the model at the start of iteration
    i*, so the list is (weakly) increasing when EM behaves.
    """
    cfg = config or BaumWelchConfig()
    if isinstance(sequences, np.ndarray) and sequences.ndim == 1:
        sequences = [sequences]
    sequences = [np.asarray(s, dtype=np.int64) for s in sequences]
    if not sequences:
        raise ValueError("need at least one observation sequence")

    result = BaumWelchResult(model=model.copy())
    previous_ll = -np.inf
    for _ in range(cfg.max_iterations):
        new_model, ll = _em_step(result.model, sequences, cfg.smoothing)
        result.log_likelihoods.append(ll)
        result.model = new_model
        if ll - previous_ll < cfg.tolerance and np.isfinite(previous_ll):
            result.converged = True
            break
        previous_ll = ll
    return result
