"""CORP: Cooperative Opportunistic Resource Provisioning — reproduction.

Full Python reproduction of *"CORP: Cooperative Opportunistic Resource
Provisioning for Short-Lived Jobs in Cloud Systems"* (Liu, Shen, Chen —
IEEE CLUSTER 2016), including every substrate the evaluation needs:

* :mod:`repro.cluster` — discrete-time-slot cloud simulator (PMs, VMs,
  jobs, SLOs, the Eq. 1-4 metrics);
* :mod:`repro.trace` — synthetic Google-cluster-trace generator and the
  paper's trace transformations;
* :mod:`repro.nn` — from-scratch deep-learning stack (Eq. 5-8);
* :mod:`repro.hmm` — from-scratch Hidden Markov Model stack (Eq. 9-17);
* :mod:`repro.forecast` — ETS / FFT-signature / Markov-chain predictors
  and the confidence-interval machinery (Eq. 18-21);
* :mod:`repro.core` — the CORP scheduler itself (prediction pipeline,
  packing, most-matched placement, preemption gate);
* :mod:`repro.baselines` — RCCR, CloudScale and DRA as Section IV
  implements them;
* :mod:`repro.experiments` — scenario builders and one entry point per
  figure of the evaluation.

* :mod:`repro.obs` — zero-dependency structured observability (events,
  counters, timer spans) behind an attachable sink;
* :mod:`repro.faults` — deterministic fault injection (VM crashes,
  capacity revocations, predictor outages, job failures) and the
  resilience metrics the summaries report under churn;
* :mod:`repro.check` — runtime invariant checker (capacity / job
  conservation, Eq. 21 gate soundness, packing feasibility, Eq. 22
  optimality, per-placement re-derivation of the vectorized VM
  selection), differential replay of captured event streams, and the
  golden-trace regression digests;
* :mod:`repro.core.predictor_store` — persistent content-fingerprinted
  store of fitted predictors, so fresh processes load the offline
  DNN/HMM fit instead of repeating it (``repro cache
  warm|stats|clear``, ``--store`` / ``--warm-start`` /
  ``--fit-workers`` on the CLI);
* :mod:`repro.api` — the stable keyword-only facade (``compare``,
  ``sweep``, ``run_one``, ``attach_sink``, ``check_run``, ``replay``)
  and the **only supported import surface** for new code.

Quickstart::

    from repro import api

    results = api.compare(jobs=100, testbed="cluster")
    for method, result in results.items():
        print(method, result.summary())

    with api.capture_events("events.jsonl"):
        api.run_one(scenario=api.build_scenario(jobs=50), method="CORP")

    plan = api.build_fault_plan(seed=0, intensity=0.5)
    faulted = api.compare(jobs=100, fault_plan=plan)

    report = api.check_run(jobs=50)          # invariant-checked run
    assert report.ok, report.violations
"""

from .baselines import CloudScaleScheduler, DraScheduler, RccrScheduler
from .cluster import (
    ClusterProfile,
    ClusterSimulator,
    Job,
    JobState,
    PhysicalMachine,
    Placement,
    ResourceKind,
    ResourceVector,
    ScaleConfig,
    Scheduler,
    ShardedCandidateIndex,
    SimulationConfig,
    SimulationResult,
    SloSpec,
    VirtualMachine,
)
from .core import (
    CorpConfig,
    CorpPredictor,
    CorpScheduler,
    JobEntity,
    pack_jobs,
)
from .experiments import (
    JOB_COUNTS,
    METHOD_ORDER,
    Scenario,
    cluster_scenario,
    ec2_scenario,
    run_methods,
)
from .trace import (
    GoogleTraceGenerator,
    TaskRecord,
    Trace,
    TraceConfig,
    build_workload,
    remove_long_lived,
    resample_trace,
)
from . import api, check, faults, obs, service
from .api import (
    attach_sink,
    build_fault_plan,
    capture_events,
    check_run,
    compare,
    detach_sink,
    inject,
    open_service,
    replay,
    run_one,
    sweep,
    takeover_run,
)
from .check import CheckReport, InvariantChecker, ReplayReport, Violation
from .faults import FaultPlan, RetryPolicy, TakeoverReport
from .service import PlacementUpdate, SchedulerKernel, SchedulerService

__version__ = "1.8.0"

__all__ = [
    "CloudScaleScheduler",
    "DraScheduler",
    "RccrScheduler",
    "ClusterProfile",
    "ClusterSimulator",
    "Job",
    "JobState",
    "PhysicalMachine",
    "Placement",
    "ResourceKind",
    "ResourceVector",
    "ScaleConfig",
    "Scheduler",
    "ShardedCandidateIndex",
    "SimulationConfig",
    "SimulationResult",
    "SloSpec",
    "VirtualMachine",
    "CorpConfig",
    "CorpPredictor",
    "CorpScheduler",
    "JobEntity",
    "pack_jobs",
    "JOB_COUNTS",
    "METHOD_ORDER",
    "Scenario",
    "cluster_scenario",
    "ec2_scenario",
    "run_methods",
    "GoogleTraceGenerator",
    "TaskRecord",
    "Trace",
    "TraceConfig",
    "build_workload",
    "remove_long_lived",
    "resample_trace",
    "api",
    "check",
    "faults",
    "obs",
    "service",
    "compare",
    "sweep",
    "run_one",
    "inject",
    "build_fault_plan",
    "FaultPlan",
    "RetryPolicy",
    "attach_sink",
    "detach_sink",
    "capture_events",
    "check_run",
    "replay",
    "CheckReport",
    "InvariantChecker",
    "ReplayReport",
    "Violation",
    "open_service",
    "takeover_run",
    "PlacementUpdate",
    "SchedulerKernel",
    "SchedulerService",
    "TakeoverReport",
    "__version__",
]
