"""Workload driver: turns a trace into a per-slot arrival schedule.

The simulator advances in discrete time slots (:mod:`repro.cluster`);
this module buckets trace records by submission slot so the simulator can
pull "the jobs submitted at time slot t" (the paper's :math:`n_t`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from .records import TaskRecord, Trace

__all__ = ["Workload", "build_workload"]


@dataclass(frozen=True)
class Workload:
    """A trace bucketed into arrival slots.

    Attributes
    ----------
    slot_duration_s:
        Seconds per simulation slot (10 s in the paper's evaluation).
    arrivals:
        Mapping from slot index to the records submitted in that slot.
    n_slots:
        Number of arrival slots: arrivals occur at slots
        ``0..n_slots-1`` (zero for an empty trace).  The simulation
        typically runs longer to drain the queue.
    """

    slot_duration_s: float
    arrivals: Mapping[int, tuple[TaskRecord, ...]]
    n_slots: int

    def arrivals_at(self, slot: int) -> tuple[TaskRecord, ...]:
        """Records submitted at ``slot`` (empty tuple if none)."""
        return self.arrivals.get(slot, ())

    def total_jobs(self) -> int:
        """Total records across all arrival slots."""
        return sum(len(v) for v in self.arrivals.values())

    def iter_slots(self) -> Iterator[tuple[int, tuple[TaskRecord, ...]]]:
        """Iterate ``(slot, records)`` in slot order."""
        for slot in sorted(self.arrivals):
            yield slot, self.arrivals[slot]

    def arrival_counts(self) -> np.ndarray:
        """Array of per-slot arrival counts, length ``n_slots``."""
        counts = np.zeros(self.n_slots, dtype=np.int64)
        for slot, recs in self.arrivals.items():
            counts[slot] = len(recs)
        return counts


def build_workload(trace: Trace, slot_duration_s: float = 10.0) -> Workload:
    """Bucket ``trace`` records into slots of ``slot_duration_s`` seconds.

    Records must already be sampled at the slot granularity (use
    :func:`repro.trace.transform.resample_trace` first); a mismatch would
    silently desynchronise demand lookups, so it is rejected here.
    """
    if slot_duration_s <= 0:
        raise ValueError("slot_duration_s must be positive")
    buckets: dict[int, list[TaskRecord]] = {}
    for record in trace:
        if abs(record.sample_period_s - slot_duration_s) > 1e-9:
            raise ValueError(
                f"record {record.task_id} is sampled every "
                f"{record.sample_period_s}s but the slot is {slot_duration_s}s; "
                "resample the trace first"
            )
        slot = int(record.submit_time_s // slot_duration_s)
        buckets.setdefault(slot, []).append(record)
    frozen = {slot: tuple(records) for slot, records in buckets.items()}
    # Count semantics: the last arrival at slot index m means m + 1
    # arrival slots (0..m).  The previous ``max(frozen)`` was off by one
    # against the documented meaning, and the simulator compensated with
    # a strict ``>`` — keep the two in sync (see ClusterSimulator.run).
    n_slots = max(frozen) + 1 if frozen else 0
    return Workload(
        slot_duration_s=slot_duration_s, arrivals=frozen, n_slots=n_slots
    )
