"""Containers for Google-trace-like task records.

The paper's evaluation replays the Google cluster trace [39], which
"records the resource requirements and usage of tasks every 5 minutes"
(Section IV).  A :class:`TaskRecord` captures exactly what the evaluation
needs from such a trace: when the task was submitted, how long it ran,
how much of each resource it *requested* (its allocation) and how much it
actually *used* at each sampling interval.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceVector

__all__ = ["TaskRecord", "Trace", "SHORT_JOB_TIMEOUT_S"]

#: Maximum runtime of a short-lived job, in seconds.  "Short-lived jobs
#: ... typically run for seconds or minutes with a maximum timeout of 5
#: minutes" (Section I, refs [10]-[13]).
SHORT_JOB_TIMEOUT_S: float = 300.0


@dataclass(frozen=True)
class TaskRecord:
    """One task of one job in the trace.

    Attributes
    ----------
    task_id:
        Unique identifier within the trace.
    submit_time_s:
        Submission timestamp, seconds from trace start.
    duration_s:
        Nominal (uncontended) runtime in seconds.
    requested:
        Per-resource amount the task requested — this is the amount the
        cloud *allocates* (``r_ij`` in the paper's notation).
    usage:
        ``(n_samples, NUM_RESOURCES)`` float array of actual usage
        (``d_ij`` per sample), sampled every ``sample_period_s`` seconds.
        Usage never exceeds ``requested``.
    sample_period_s:
        Seconds between consecutive usage samples (5 minutes for the raw
        Google trace; 10 seconds after the paper's transformation).
    is_short:
        Whether the task is short-lived (``duration_s`` within the
        5-minute timeout).  Long-lived tasks are filtered out before the
        evaluation (Section IV).
    """

    task_id: int
    submit_time_s: float
    duration_s: float
    requested: ResourceVector
    usage: np.ndarray
    sample_period_s: float
    is_short: bool = field(default=True)

    def __post_init__(self) -> None:
        usage = np.asarray(self.usage, dtype=np.float64)
        if usage.ndim != 2 or usage.shape[1] != NUM_RESOURCES:
            raise ValueError(
                f"usage must be (n_samples, {NUM_RESOURCES}); got {usage.shape}"
            )
        if usage.shape[0] < 1:
            raise ValueError("usage needs at least one sample")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if not self.requested.is_nonnegative():
            raise ValueError("requested amounts must be non-negative")
        if np.any(usage < -1e-12):
            raise ValueError("usage must be non-negative")
        usage = usage.copy()
        usage.setflags(write=False)
        object.__setattr__(self, "usage", usage)

    @property
    def n_samples(self) -> int:
        """Number of usage samples the record carries."""
        return int(self.usage.shape[0])

    def usage_at(self, sample_index: int) -> ResourceVector:
        """Usage vector at a sample index (clamped to the last sample)."""
        idx = min(max(sample_index, 0), self.n_samples - 1)
        return ResourceVector(self.usage[idx])

    def unused_series(self) -> np.ndarray:
        """Per-sample allocated-but-unused amounts ``r - d`` (Section II).

        Returns a ``(n_samples, NUM_RESOURCES)`` array, clipped at zero.
        """
        return np.maximum(self.requested.as_array() - self.usage, 0.0)

    def utilization_series(self) -> np.ndarray:
        """Per-sample fraction of the request actually used, in ``[0, 1]``.

        Resources with a zero request report zero utilization.
        """
        req = self.requested.as_array()
        out = np.zeros_like(self.usage)
        nz = req > 0
        out[:, nz] = self.usage[:, nz] / req[nz]
        return np.clip(out, 0.0, 1.0)

    def with_usage(self, usage: np.ndarray, sample_period_s: float) -> "TaskRecord":
        """Copy of this record with a resampled usage series."""
        return replace(self, usage=usage, sample_period_s=sample_period_s)


class Trace:
    """An ordered collection of :class:`TaskRecord` objects.

    Records are kept sorted by submission time, which is the order the
    workload driver replays them in.
    """

    def __init__(self, records: Iterable[TaskRecord] = ()) -> None:
        self._records: list[TaskRecord] = sorted(
            records, key=lambda r: (r.submit_time_s, r.task_id)
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, idx: int) -> TaskRecord:
        return self._records[idx]

    @property
    def records(self) -> Sequence[TaskRecord]:
        """Immutable view of the records, in replay order."""
        return tuple(self._records)

    def duration_s(self) -> float:
        """Time span from trace start to the last task's completion."""
        if not self._records:
            return 0.0
        return max(r.submit_time_s + r.duration_s for r in self._records)

    def short_fraction(self) -> float:
        """Fraction of records flagged short-lived.

        "Most of the jobs in the Google trace are short jobs" [6]; the
        generator and tests assert this property holds.
        """
        if not self._records:
            return 0.0
        return sum(r.is_short for r in self._records) / len(self._records)

    def filter(self, predicate) -> "Trace":
        """New trace containing only records satisfying ``predicate``."""
        return Trace(r for r in self._records if predicate(r))

    def map(self, fn) -> "Trace":
        """New trace with ``fn`` applied to every record."""
        return Trace(fn(r) for r in self._records)

    def stacked_usage(self) -> np.ndarray:
        """Concatenate all usage rows into one ``(N, NUM_RESOURCES)`` array.

        Convenient for fitting global statistics (e.g. the HMM's
        historical peak/valley intervals in Section III-A.1b).
        """
        if not self._records:
            return np.zeros((0, NUM_RESOURCES))
        return np.vstack([r.usage for r in self._records])

    def stacked_unused(self) -> np.ndarray:
        """Concatenate all unused-resource rows (``r - d``) into one array."""
        if not self._records:
            return np.zeros((0, NUM_RESOURCES))
        return np.vstack([r.unused_series() for r in self._records])

    def content_digest(self) -> str:
        """Stable hex digest of the trace's full content.

        Two traces with identical records hash identically even when
        they are distinct objects — sweeps regenerate the same seeded
        history trace at every point, and caches keyed on object
        identity would refit the predictor each time.  Records are
        immutable, so the digest is computed once and memoized.
        """
        cached = getattr(self, "_digest", None)
        if cached is not None:
            return cached
        h = hashlib.sha256()
        for r in self._records:
            h.update(
                repr(
                    (
                        r.task_id,
                        r.submit_time_s,
                        r.duration_s,
                        r.sample_period_s,
                        r.is_short,
                        tuple(r.requested.as_array()),
                    )
                ).encode()
            )
            h.update(r.usage.tobytes())
        digest = h.hexdigest()
        self._digest = digest
        return digest
