"""Trace persistence: JSONL save/load and a CSV adapter.

Lets users replay *real* traces (e.g. an actual Google-cluster-trace
extract) through the simulator instead of the synthetic generator, and
lets generated traces be archived for exact re-runs.

Formats
-------
* **JSONL** (:func:`save_jsonl` / :func:`load_jsonl`) — one record per
  line, usage embedded; lossless round-trip of every field.
* **CSV** (:func:`load_usage_csv`) — the adapter for external data:
  long-format rows ``task_id,timestamp_s,cpu,mem,storage`` plus a task
  table ``task_id,submit_time_s,duration_s,req_cpu,req_mem,req_storage``.
  This mirrors how the public Google trace's task-usage table is
  typically exported.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceVector
from .records import TaskRecord, Trace

__all__ = ["save_jsonl", "load_jsonl", "load_usage_csv"]


def save_jsonl(trace: Trace, path: str | Path) -> None:
    """Write a trace as one JSON object per line (lossless)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in trace:
            fh.write(
                json.dumps(
                    {
                        "task_id": record.task_id,
                        "submit_time_s": record.submit_time_s,
                        "duration_s": record.duration_s,
                        "requested": list(record.requested),
                        "sample_period_s": record.sample_period_s,
                        "is_short": record.is_short,
                        "usage": record.usage.tolist(),
                    }
                )
            )
            fh.write("\n")


def load_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_jsonl`."""
    path = Path(path)
    records = []
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON ({exc})") from exc
            records.append(
                TaskRecord(
                    task_id=int(obj["task_id"]),
                    submit_time_s=float(obj["submit_time_s"]),
                    duration_s=float(obj["duration_s"]),
                    requested=ResourceVector(obj["requested"]),
                    usage=np.asarray(obj["usage"], dtype=np.float64),
                    sample_period_s=float(obj["sample_period_s"]),
                    is_short=bool(obj.get("is_short", True)),
                )
            )
    return Trace(records)


def load_usage_csv(
    tasks_path: str | Path,
    usage_path: str | Path,
    *,
    sample_period_s: float,
    short_timeout_s: float = 300.0,
) -> Trace:
    """Assemble a trace from external task/usage CSV tables.

    Parameters
    ----------
    tasks_path:
        CSV with header ``task_id,submit_time_s,duration_s,req_cpu,
        req_mem,req_storage``.
    usage_path:
        CSV with header ``task_id,timestamp_s,cpu,mem,storage``; rows
        need not be sorted.  Timestamps are offsets from the task's
        submission and are bucketed to ``sample_period_s``.
    sample_period_s:
        Sampling period of the usage rows.
    short_timeout_s:
        Tasks at or under this duration are flagged short-lived.
    """
    tasks_path, usage_path = Path(tasks_path), Path(usage_path)

    tasks: dict[int, dict] = {}
    with tasks_path.open(newline="", encoding="utf-8") as fh:
        for row in csv.DictReader(fh):
            task_id = int(row["task_id"])
            tasks[task_id] = {
                "submit": float(row["submit_time_s"]),
                "duration": float(row["duration_s"]),
                "requested": ResourceVector(
                    [
                        float(row["req_cpu"]),
                        float(row["req_mem"]),
                        float(row["req_storage"]),
                    ]
                ),
            }

    samples: dict[int, list[tuple[int, np.ndarray]]] = {t: [] for t in tasks}
    with usage_path.open(newline="", encoding="utf-8") as fh:
        for row in csv.DictReader(fh):
            task_id = int(row["task_id"])
            if task_id not in tasks:
                raise ValueError(
                    f"usage row references unknown task_id {task_id}"
                )
            index = int(float(row["timestamp_s"]) // sample_period_s)
            values = np.array(
                [float(row["cpu"]), float(row["mem"]), float(row["storage"])]
            )
            samples[task_id].append((index, values))

    records = []
    for task_id, info in tasks.items():
        rows = samples[task_id]
        n = max(1, int(np.ceil(info["duration"] / sample_period_s)))
        usage = np.zeros((n, NUM_RESOURCES))
        for index, values in rows:
            if 0 <= index < n:
                usage[index] = values
        # Forward-fill gaps so the demand series has no artificial
        # zero-usage dropouts (external exports are often sparse).
        last = usage[0].copy()
        for i in range(n):
            if usage[i].any():
                last = usage[i].copy()
            else:
                usage[i] = last
        usage = np.clip(usage, 0.0, info["requested"].as_array())
        records.append(
            TaskRecord(
                task_id=task_id,
                submit_time_s=info["submit"],
                duration_s=info["duration"],
                requested=info["requested"],
                usage=usage,
                sample_period_s=sample_period_s,
                is_short=info["duration"] <= short_timeout_s,
            )
        )
    return Trace(records)
