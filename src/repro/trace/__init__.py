"""Workload substrate: synthetic Google-trace generation and replay.

Substitutes the Google cluster trace the paper replays (see DESIGN.md §2)
with a statistically matched generator, plus the paper's own
transformations: 5-minute → 10-second resampling and long-lived-job
removal (Section IV).
"""

from .filters import is_short_lived, keep_long_lived, limit_jobs, remove_long_lived
from .generator import INTENSITY_CLASSES, GoogleTraceGenerator, TraceConfig
from .io import load_jsonl, load_usage_csv, save_jsonl
from .records import SHORT_JOB_TIMEOUT_S, TaskRecord, Trace
from .transform import DEFAULT_TARGET_PERIOD_S, resample_record, resample_trace
from .workload import Workload, build_workload

__all__ = [
    "is_short_lived",
    "keep_long_lived",
    "limit_jobs",
    "remove_long_lived",
    "INTENSITY_CLASSES",
    "GoogleTraceGenerator",
    "TraceConfig",
    "load_jsonl",
    "load_usage_csv",
    "save_jsonl",
    "SHORT_JOB_TIMEOUT_S",
    "TaskRecord",
    "Trace",
    "DEFAULT_TARGET_PERIOD_S",
    "resample_record",
    "resample_trace",
    "Workload",
    "build_workload",
]
