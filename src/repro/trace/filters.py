"""Trace filters used by the evaluation setup.

Section IV: "we removed the long-lived jobs from the Google trace because
it can fully verify if CORP can really overcome the limitations of the
other approaches for handling the prediction of the amount of unused
resource of short-lived jobs."
"""

from __future__ import annotations

from .records import SHORT_JOB_TIMEOUT_S, TaskRecord, Trace

__all__ = [
    "remove_long_lived",
    "keep_long_lived",
    "limit_jobs",
    "is_short_lived",
]


def is_short_lived(record: TaskRecord, timeout_s: float = SHORT_JOB_TIMEOUT_S) -> bool:
    """True iff the record is a short-lived job.

    A job is short-lived when it is flagged so *and* its duration respects
    the 5-minute timeout; the conjunction guards against inconsistent
    records coming from external trace loaders.
    """
    return record.is_short and record.duration_s <= timeout_s


def remove_long_lived(trace: Trace, timeout_s: float = SHORT_JOB_TIMEOUT_S) -> Trace:
    """The paper's filter: keep short-lived jobs only."""
    return trace.filter(lambda r: is_short_lived(r, timeout_s))


def keep_long_lived(trace: Trace, timeout_s: float = SHORT_JOB_TIMEOUT_S) -> Trace:
    """Complement of :func:`remove_long_lived` (used by tests/ablations)."""
    return trace.filter(lambda r: not is_short_lived(r, timeout_s))


def limit_jobs(trace: Trace, n_jobs: int) -> Trace:
    """First ``n_jobs`` records by submission time.

    The evaluation sweeps the job count from 50 to 300 in steps of 50
    (Section IV); this implements that truncation.
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be non-negative")
    return Trace(list(trace)[:n_jobs])
