"""Trace resampling: the paper's 5-minute → 10-second transformation.

Section IV: "We transformed the remaining of the 5-minute trace into
[a] 10-second trace."  The raw Google trace averages usage over 5-minute
windows, which hides the sub-minute fluctuations short-lived jobs exhibit.
The transform therefore does two things:

1. linearly interpolates the coarse samples down to the target period, and
2. (optionally) re-injects short-timescale fluctuation noise so the fine
   series keeps the bursty character the coarse averaging removed.

The fluctuation re-injection is deterministic in the supplied seed and is
bounded so the fine series still integrates (approximately) to the coarse
one over each coarse window.
"""

from __future__ import annotations

import numpy as np

from .records import TaskRecord, Trace

__all__ = ["resample_record", "resample_trace", "DEFAULT_TARGET_PERIOD_S"]

#: The paper's target granularity: 10-second slots.
DEFAULT_TARGET_PERIOD_S: float = 10.0


def _interpolate(usage: np.ndarray, factor: int) -> np.ndarray:
    """Linear interpolation of each resource column by an integer factor."""
    n, l = usage.shape
    if n == 1:
        return np.repeat(usage, factor, axis=0)
    coarse_x = np.arange(n, dtype=np.float64)
    fine_x = np.arange(n * factor, dtype=np.float64) / factor
    out = np.empty((n * factor, l))
    for j in range(l):
        out[:, j] = np.interp(fine_x, coarse_x, usage[:, j])
    return out


def resample_record(
    record: TaskRecord,
    target_period_s: float = DEFAULT_TARGET_PERIOD_S,
    *,
    fluctuation_sigma: float = 0.05,
    seed: int | None = 0,
) -> TaskRecord:
    """Resample one record's usage to ``target_period_s``.

    Parameters
    ----------
    record:
        The coarse record.
    target_period_s:
        Desired sampling period; must evenly divide the record's period.
    fluctuation_sigma:
        Standard deviation (as a fraction of the request) of the
        re-injected short-timescale fluctuation.  Zero disables it.
    seed:
        Seed for the fluctuation noise; combined with the task id so
        different tasks get independent noise but the whole transform is
        reproducible.  ``None`` draws from fresh entropy.
    """
    if target_period_s <= 0:
        raise ValueError("target_period_s must be positive")
    ratio = record.sample_period_s / target_period_s
    factor = int(round(ratio))
    if factor < 1 or abs(ratio - factor) > 1e-9:
        raise ValueError(
            f"target period {target_period_s}s must evenly divide the "
            f"record period {record.sample_period_s}s"
        )
    if factor == 1:
        return record
    fine = _interpolate(record.usage, factor)
    if fluctuation_sigma > 0.0:
        rng = np.random.default_rng(
            None if seed is None else (seed * 1_000_003 + record.task_id)
        )
        scale = record.requested.as_array()[None, :] * fluctuation_sigma
        noise = rng.normal(0.0, 1.0, size=fine.shape) * scale
        # Zero-mean the noise within each coarse window so the fine series
        # still averages back to (approximately) the coarse sample.
        noise = noise.reshape(record.n_samples, factor, -1)
        noise -= noise.mean(axis=1, keepdims=True)
        fine = fine + noise.reshape(fine.shape)
    fine = np.clip(fine, 0.0, record.requested.as_array()[None, :])
    # Trim to the samples the job actually lives through.
    n_keep = max(1, int(np.ceil(record.duration_s / target_period_s)))
    fine = fine[:n_keep]
    return record.with_usage(fine, target_period_s)


def resample_trace(
    trace: Trace,
    target_period_s: float = DEFAULT_TARGET_PERIOD_S,
    *,
    fluctuation_sigma: float = 0.05,
    seed: int | None = 0,
) -> Trace:
    """Apply :func:`resample_record` to every record of a trace."""
    return trace.map(
        lambda r: resample_record(
            r, target_period_s, fluctuation_sigma=fluctuation_sigma, seed=seed
        )
    )
