"""Synthetic Google-cluster-trace generator.

The paper's experiments replay the public Google cluster trace [39],
keeping only short-lived tasks and resampling the 5-minute records to a
10-second granularity (Section IV).  The trace itself is not shipped with
this reproduction, so this module generates a statistically matched
substitute.  Two properties of the real trace carry the paper's argument,
and the generator controls both directly:

1. **Short-lived jobs dominate and their usage has no pattern** — their
   per-slot utilization is a regime-switching stochastic process (random
   bursts to a peak regime, random drops to a valley regime, a drifting
   centre otherwise).  Pattern-assuming predictors (FFT signatures, plain
   time-series smoothing) are structurally disadvantaged on it, exactly
   the situation Section I describes.
2. **Long-lived jobs do have patterns** — smooth periodic (diurnal-like)
   utilization — so the paper's "remove the long-lived jobs" filter
   (Section IV) is meaningful and testable.

Jobs also come in *resource-intensity classes* (CPU-, MEM-,
storage-intensive and balanced), which is what makes the complementary
packing strategy of Section III-B consequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceKind, ResourceVector
from .records import SHORT_JOB_TIMEOUT_S, TaskRecord, Trace

__all__ = ["TraceConfig", "GoogleTraceGenerator", "INTENSITY_CLASSES"]

#: Job resource-intensity classes and the (low, high) request ranges per
#: resource, in (cores, GB, GB).  The mix mirrors the heterogeneity the
#: Google trace analysis reports [6] and gives the packing strategy
#: complementary pairs to exploit (Fig. 1 / Fig. 4 of the paper).
INTENSITY_CLASSES: dict[str, dict[ResourceKind, tuple[float, float]]] = {
    "cpu": {
        ResourceKind.CPU: (4.0, 7.0),
        ResourceKind.MEM: (1.0, 3.0),
        ResourceKind.STORAGE: (5.0, 20.0),
    },
    "mem": {
        ResourceKind.CPU: (0.5, 2.0),
        ResourceKind.MEM: (8.0, 24.0),
        ResourceKind.STORAGE: (5.0, 20.0),
    },
    "storage": {
        ResourceKind.CPU: (0.5, 2.0),
        ResourceKind.MEM: (1.0, 3.0),
        ResourceKind.STORAGE: (80.0, 300.0),
    },
    "balanced": {
        ResourceKind.CPU: (2.0, 4.0),
        ResourceKind.MEM: (3.0, 8.0),
        ResourceKind.STORAGE: (20.0, 80.0),
    },
}


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace.

    Defaults reproduce the evaluation setup of Section IV: mostly short
    jobs, 5-minute raw sampling, heavy-tailed short durations capped at
    the 5-minute timeout.
    """

    n_jobs: int = 100
    #: Mean of the Poisson arrival process, jobs per second.  Ignored
    #: when ``arrival_span_s`` is set.
    arrival_rate_per_s: float = 0.25
    #: When set, submissions are uniform over ``[0, arrival_span_s]``
    #: instead of Poisson — the evaluation sweeps the job count on a
    #: fixed arrival span, so more jobs means a denser cluster (the
    #: regime in which Fig. 7's utilization rises with the job count).
    arrival_span_s: float | None = None
    #: Fraction of jobs that are short-lived ("most of the jobs in the
    #: Google trace are short jobs" [6]).
    short_fraction: float = 0.9
    #: Raw sampling period; the Google trace records every 5 minutes.
    sample_period_s: float = 300.0
    #: Log-normal parameters of short-job durations (seconds), clipped to
    #: ``[min_duration_s, SHORT_JOB_TIMEOUT_S]``.
    short_duration_mu: float = 4.3
    short_duration_sigma: float = 0.8
    min_duration_s: float = 20.0
    #: Long-job duration range (seconds) — hours, like Google service jobs.
    long_duration_range_s: tuple[float, float] = (3600.0, 6 * 3600.0)
    #: Probability per sample of entering a burst (peak) regime and the
    #: mean number of samples a burst lasts.
    burst_prob: float = 0.12
    burst_mean_len: float = 2.0
    #: Probability per sample of entering a valley regime.
    valley_prob: float = 0.10
    valley_mean_len: float = 2.0
    #: Utilization levels (fraction of request) of each regime's centre.
    peak_level: float = 0.85
    valley_level: float = 0.15
    #: Random-walk step of the centre regime's utilization level.
    centre_walk_sigma: float = 0.06
    #: Observation noise applied to every sample.
    noise_sigma: float = 0.03
    #: Period of the long-lived jobs' (patterned) utilization, seconds.
    long_pattern_period_s: float = 3600.0
    #: Mix of intensity classes (probabilities, same order as keys below).
    class_names: tuple[str, ...] = ("cpu", "mem", "storage", "balanced")
    class_probs: tuple[float, ...] = (0.3, 0.3, 0.2, 0.2)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if not 0.0 <= self.short_fraction <= 1.0:
            raise ValueError("short_fraction must be in [0, 1]")
        if self.arrival_span_s is not None and self.arrival_span_s <= 0:
            raise ValueError("arrival_span_s must be positive when set")
        if abs(sum(self.class_probs) - 1.0) > 1e-9:
            raise ValueError("class_probs must sum to 1")
        if len(self.class_probs) != len(self.class_names):
            raise ValueError("class_probs and class_names must align")
        for name in self.class_names:
            if name not in INTENSITY_CLASSES:
                raise ValueError(f"unknown intensity class {name!r}")


class GoogleTraceGenerator:
    """Generates a :class:`~repro.trace.records.Trace` per a :class:`TraceConfig`."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()

    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[TaskRecord]:
        """Stream the trace's records one at a time (submit-time order).

        Draws the same rng sequence as a full :meth:`generate` — the
        submit times up front (one ``(n_jobs,)`` array, the only O(n)
        allocation), then each task's draws in task order — so the
        streamed records are byte-identical to the materialized trace.
        Million-job workloads can be consumed chunk by chunk
        (:meth:`generate_chunks`) without ever holding every record's
        usage matrix in memory at once.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if cfg.arrival_span_s is not None:
            # Fixed-span arrivals: job count controls cluster density.
            submit_times = np.sort(rng.uniform(0.0, cfg.arrival_span_s, cfg.n_jobs))
        else:
            # Poisson arrivals: exponential inter-arrival gaps.
            gaps = rng.exponential(1.0 / cfg.arrival_rate_per_s, size=cfg.n_jobs)
            submit_times = np.cumsum(gaps)
        for task_id in range(cfg.n_jobs):
            is_short = bool(rng.random() < cfg.short_fraction)
            yield self._generate_task(
                task_id=task_id,
                submit_time_s=float(submit_times[task_id]),
                is_short=is_short,
                rng=rng,
            )

    def generate_chunks(
        self, chunk_size: int = 4096
    ) -> Iterator[list[TaskRecord]]:
        """Stream the trace as lists of at most ``chunk_size`` records.

        The streaming shape the hyperscale drivers consume (the
        ``--scale`` benchmark, ``ScaleConfig.chunk_size``): peak memory
        is one chunk of records, not the whole workload.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        chunk: list[TaskRecord] = []
        for record in self.iter_records():
            chunk.append(record)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def generate(self) -> Trace:
        """Produce the full synthetic trace (deterministic in the seed)."""
        return Trace(list(self.iter_records()))

    # ------------------------------------------------------------------
    def _generate_task(
        self, *, task_id: int, submit_time_s: float, is_short: bool,
        rng: np.random.Generator,
    ) -> TaskRecord:
        cfg = self.config
        requested = self._draw_request(rng)
        if is_short:
            duration = float(
                np.clip(
                    rng.lognormal(cfg.short_duration_mu, cfg.short_duration_sigma),
                    cfg.min_duration_s,
                    SHORT_JOB_TIMEOUT_S,
                )
            )
        else:
            lo, hi = cfg.long_duration_range_s
            duration = float(rng.uniform(lo, hi))
        n_samples = max(1, int(np.ceil(duration / cfg.sample_period_s)))
        if is_short:
            util = self._short_utilization(n_samples, rng)
        else:
            util = self._long_utilization(n_samples, rng)
        usage = util[:, None] * requested.as_array()[None, :]
        # Storage differs from CPU/MEM: usage is sticky (written data
        # stays) and requests are padded well above real needs — jobs
        # over-reserve disk, so a sizable fraction stays unused for the
        # job's whole life (the slack CORP's packing exploits).
        storage_scale = rng.uniform(0.2, 0.6)
        usage[:, ResourceKind.STORAGE] = (
            np.maximum.accumulate(usage[:, ResourceKind.STORAGE]) * storage_scale
        )
        usage = np.clip(usage, 0.0, requested.as_array()[None, :])
        return TaskRecord(
            task_id=task_id,
            submit_time_s=submit_time_s,
            duration_s=duration,
            requested=requested,
            usage=usage,
            sample_period_s=cfg.sample_period_s,
            is_short=is_short,
        )

    # ------------------------------------------------------------------
    def _draw_request(self, rng: np.random.Generator) -> ResourceVector:
        cfg = self.config
        idx = int(rng.choice(len(cfg.class_names), p=cfg.class_probs))
        ranges = INTENSITY_CLASSES[cfg.class_names[idx]]
        values = np.empty(NUM_RESOURCES)
        for kind in ResourceKind:
            lo, hi = ranges[kind]
            values[kind] = rng.uniform(lo, hi)
        return ResourceVector(values)

    # ------------------------------------------------------------------
    def _short_utilization(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Patternless regime-switching utilization series in ``[0, 1]``.

        Three regimes — centre (drifting random walk), peak burst, valley
        drop — entered at random with geometric dwell times.  This is the
        fluctuation structure Section III-A.1b's HMM discretizes into
        peak/center/valley observation symbols.
        """
        cfg = self.config
        util = np.empty(n)
        centre = rng.uniform(0.25, 0.55)
        regime = "centre"
        dwell = 0
        for i in range(n):
            if dwell > 0:
                dwell -= 1
            else:
                u = rng.random()
                if u < cfg.burst_prob:
                    regime = "peak"
                    dwell = int(rng.geometric(1.0 / cfg.burst_mean_len))
                elif u < cfg.burst_prob + cfg.valley_prob:
                    regime = "valley"
                    dwell = int(rng.geometric(1.0 / cfg.valley_mean_len))
                else:
                    regime = "centre"
            if regime == "peak":
                level = cfg.peak_level
            elif regime == "valley":
                level = cfg.valley_level
            else:
                centre = float(
                    np.clip(centre + rng.normal(0.0, cfg.centre_walk_sigma), 0.15, 0.65)
                )
                level = centre
            util[i] = level + rng.normal(0.0, cfg.noise_sigma)
        return np.clip(util, 0.0, 1.0)

    def _long_utilization(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Patterned (periodic) utilization for long-lived service jobs."""
        cfg = self.config
        t = np.arange(n) * cfg.sample_period_s
        phase = rng.uniform(0.0, 2.0 * np.pi)
        base = rng.uniform(0.4, 0.6)
        amp = rng.uniform(0.2, 0.3)
        util = base + amp * np.sin(2.0 * np.pi * t / cfg.long_pattern_period_s + phase)
        util += rng.normal(0.0, cfg.noise_sigma, size=n)
        return np.clip(util, 0.0, 1.0)
