"""DRA baseline [Shanmuganathan et al., SIGMETRICS 2013] per Section IV.

"DRA provides the cloud customer with the abstraction of buying bulk
capacity ... and then re-distributes the purchased capacity among
[the] VMs based on their demand ... taking into account shares and not
giving the VMs more than what they demand."  The paper's setup:

* shares statically assigned at creation with a high:medium:low mix of
  4:2:1;
* "the run-time software ... periodically estimate[s] the amount of
  unused resource of VMs based on the historical resource usage data"
  — a plain running average, with no fluctuation handling and no
  confidence machinery (the reasons Fig. 6 ranks it last);
* capacity is redistributed equitably by share, capped at the demand
  estimate; no opportunistic reuse of unused allocations.

Mechanically, the redistribution sets per-placement grant caps: when a
job's real demand bursts past its (average-based) estimate, the cap
squeezes it, which stretches response times — DRA's high SLO-violation
rate in Fig. 9/13.
"""

from __future__ import annotations

import numpy as np

from ..cluster.job import Job
from ..cluster.machine import VirtualMachine
from ..cluster.resources import NUM_RESOURCES, ResourceVector
from ..core.provisioning import ProvisioningSchedulerBase

__all__ = ["DraScheduler"]

#: The paper's high : medium : low share mix.
SHARE_VALUES: tuple[float, ...] = (4.0, 2.0, 1.0)


class DraScheduler(ProvisioningSchedulerBase):
    """Share/demand-based equitable capacity redistribution."""

    name = "DRA"
    supports_opportunistic = False

    def __init__(
        self,
        *,
        window_slots: int = 6,
        history_slots: int = 30,
        #: Headroom multiplier on the demand estimate when capping; 1.0
        #: caps at the running average itself (most aggressive).
        headroom: float = 1.1,
        error_tolerance: float = 0.75,
        seed: int = 0,
    ) -> None:
        super().__init__(
            window_slots=window_slots,
            error_tolerance=error_tolerance,
            seed=seed,
        )
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        self.history_slots = history_slots
        self.headroom = headroom
        #: job_id -> share value, assigned at placement time.
        self._shares: dict[int, float] = {}

    # ------------------------------------------------------------------
    def _share_of(self, job: Job) -> float:
        share = self._shares.get(job.job_id)
        if share is None:
            share = float(SHARE_VALUES[int(self.rng.integers(len(SHARE_VALUES)))])
            self._shares[job.job_id] = share
        return share

    def _demand_estimate(self, job: Job) -> np.ndarray:
        """Run-time estimate: running average of recent observed demand.

        Fresh jobs (no observations) are estimated at their full request
        — DRA has no better information at admission.
        """
        log = job.demand_log[-self.history_slots :]
        if not log:
            return job.requested.as_array().copy()
        return np.asarray(log).mean(axis=0)

    # ------------------------------------------------------------------
    def on_slot_start(self, slot: int) -> None:
        """Window refresh plus the periodic share-based redistribution."""
        super().on_slot_start(slot)
        if self._degraded:
            return  # no estimates to redistribute on while degraded
        if slot % self.window_slots == 0:
            self._redistribute()

    def on_degraded(self, slot: int) -> None:
        """Requested-resource fallback: lift every demand-based cap."""
        for vm in self.vms:
            for p in vm.placements:
                p.granted_cap = None

    def _redistribute(self) -> None:
        """Equitable share-based redistribution with demand caps.

        Per VM: each placement's target is ``min(request, headroom ×
        demand_estimate)``; when the targets exceed the VM capacity they
        are scaled back proportionally to share weights.
        """
        for vm in self.vms:
            placements = [p for p in vm.placements if not p.opportunistic]
            if not placements:
                continue
            # The base class already charged this window's VM poll; the
            # redistribution reuses that telemetry.
            targets = np.array(
                [
                    np.minimum(
                        p.job.requested.as_array(),
                        self.headroom * self._demand_estimate(p.job),
                    )
                    for p in placements
                ]
            )
            shares = np.array([self._share_of(p.job) for p in placements])
            capacity = vm.capacity.as_array()
            total = targets.sum(axis=0)
            caps = targets.copy()
            for k in range(NUM_RESOURCES):
                if total[k] > capacity[k] + 1e-12:
                    # Scale back proportionally to shares (equitable).
                    weights = shares / shares.sum()
                    caps[:, k] = np.minimum(
                        targets[:, k], weights * capacity[k]
                    )
            for p, cap in zip(placements, caps):
                p.granted_cap = ResourceVector(cap)

    # ------------------------------------------------------------------
    def predict_vm_unused(self, vm: VirtualMachine) -> np.ndarray:
        """DRA's unused estimate: commitment minus average-demand estimates.

        Used only for the Fig. 6 error metric — DRA never reallocates
        unused resources.
        """
        total_estimate = np.zeros(NUM_RESOURCES)
        for p in vm.placements:
            if not p.opportunistic:
                total_estimate += self._demand_estimate(p.job)
        unused = vm.committed().as_array() - total_estimate
        return np.clip(unused, 0.0, None)
