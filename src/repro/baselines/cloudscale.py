"""CloudScale baseline [Shen et al., SoCC 2011] as the paper implements it.

Section IV: "For CloudScale, we first used the prediction model
developed in [37] [PRESS: FFT signature + discrete-time Markov chain]
... to predict the amount of unused resource of VMs based on historical
resource usage data.  Then we extracted the burst pattern to get the
padding value and calculated the prediction errors ... Next, we used
the adaptive padding ... to correct the prediction errors.  Finally, we
also randomly chose a VM that can satisfy the resource demands of the
job and allocated the *unallocated* resource to the job without
considering job packing."

Note the last sentence: CloudScale allocates **unallocated** resources —
it scales allocations from predictions but does not opportunistically
reuse other jobs' unused allocations, which is why its utilization
trails CORP's and RCCR's in Fig. 7 ("CORP and RCCR allocate the
resource to jobs in an opportunistic approach ...").

CloudScale's defining behaviour — "employs online resource demand
prediction and prediction error handling to adaptively allocate the
resources on PMs to VMs" — is modeled by per-placement grant caps: each
window, every running job's next-window demand is predicted
(FFT-signature, Markov fallback) and its grant capped at
``prediction + pad``.  Under-predicted bursts get squeezed until the
adaptive padding catches up, which is CloudScale's SLO-violation source
in Fig. 9/13 (better than DRA's uncorrected averages, worse than the
conservative unused-side schemes).
"""

from __future__ import annotations

import numpy as np

from ..cluster.machine import SlotOutcome, VirtualMachine
from ..cluster.resources import NUM_RESOURCES, ResourceVector
from ..core.provisioning import ProvisioningSchedulerBase
from ..forecast.fft_signature import FftSignaturePredictor
from ..forecast.markov_chain import MarkovChainPredictor
from ..forecast.padding import AdaptivePadding

__all__ = ["CloudScaleScheduler"]


class CloudScaleScheduler(ProvisioningSchedulerBase):
    """PRESS-style prediction + adaptive padding, no opportunistic reuse."""

    name = "CloudScale"
    supports_opportunistic = False

    def __init__(
        self,
        *,
        window_slots: int = 6,
        history_slots: int = 30,
        signature_threshold: float = 0.15,
        n_bins: int = 8,
        padding_percentile: float = 60.0,
        #: Windows between per-job cap recomputations (CloudScale's
        #: resource rescaling runs on its own, slower schedule).
        cap_period_windows: int = 2,
        error_tolerance: float = 0.75,
        seed: int = 0,
    ) -> None:
        super().__init__(
            window_slots=window_slots,
            error_tolerance=error_tolerance,
            seed=seed,
        )
        if history_slots < 2:
            raise ValueError("history_slots must be >= 2")
        self.history_slots = history_slots
        self.signature_threshold = signature_threshold
        self.n_bins = n_bins
        self.padding_percentile = padding_percentile
        if cap_period_windows < 1:
            raise ValueError("cap_period_windows must be >= 1")
        self.cap_period_windows = cap_period_windows
        #: One padding tracker per (vm, resource) pair, created lazily.
        self._padding: dict[tuple[int, int], AdaptivePadding] = {}

    # ------------------------------------------------------------------
    def _pad_tracker(self, vm_id: int, kind: int) -> AdaptivePadding:
        key = (vm_id, kind)
        tracker = self._padding.get(key)
        if tracker is None:
            tracker = AdaptivePadding(percentile=self.padding_percentile)
            self._padding[key] = tracker
        return tracker

    # ------------------------------------------------------------------
    def _predict_series(self, series: np.ndarray) -> float:
        """One-series forecast: FFT signature, Markov-chain fallback."""
        fft = FftSignaturePredictor(self.signature_threshold).fit(series)
        if fft.has_signature:
            return max(fft.forecast(self.window_slots), 0.0)
        markov = MarkovChainPredictor(self.n_bins).fit(series)
        return max(markov.forecast(self.window_slots), 0.0)

    def on_slot_start(self, slot: int) -> None:
        """Window refresh plus the periodic per-job cap recomputation."""
        super().on_slot_start(slot)
        if self._degraded:
            return  # elastic scaling is off while the predictor is down
        if slot % (self.window_slots * self.cap_period_windows) == 0:
            self._apply_demand_caps()

    def on_degraded(self, slot: int) -> None:
        """Requested-resource fallback: lift every demand-based cap."""
        for vm in self.vms:
            for placement in vm.placements:
                placement.granted_cap = None

    def _apply_demand_caps(self) -> None:
        """Elastic scaling: cap each grant at predicted demand + pad.

        Jobs with less than two observed slots keep their full request —
        CloudScale has no basis to scale them yet.
        """
        for vm in self.vms:
            for placement in vm.placements:
                job = placement.job
                log = job.demand_log[-self.history_slots :]
                if len(log) < 2:
                    placement.granted_cap = None
                    continue
                history = np.asarray(log)
                cap = np.empty(NUM_RESOURCES)
                for k in range(NUM_RESOURCES):
                    # Per-job series are short-lived and never carry a
                    # periodic signature; PRESS's state-based (Markov)
                    # path is the operative one here.
                    markov = MarkovChainPredictor(self.n_bins).fit(history[:, k])
                    predicted = max(markov.forecast(self.window_slots), 0.0)
                    pad = self._pad_tracker(vm.vm_id, k).pad()
                    cap[k] = predicted + pad
                placement.granted_cap = ResourceVector(
                    np.minimum(cap, job.requested.as_array())
                )

    # ------------------------------------------------------------------
    def predict_vm_unused(self, vm: VirtualMachine) -> np.ndarray:
        """FFT signature per resource; Markov-chain fallback when none."""
        history = vm.unused_history(last=self.history_slots)
        out = np.zeros(NUM_RESOURCES)
        if history.shape[0] < 2:
            return out
        for k in range(NUM_RESOURCES):
            out[k] = self._predict_series(history[:, k])
        return out

    def adjust_forecast(self, raw: np.ndarray, vm: VirtualMachine) -> np.ndarray:
        """Adaptive padding: shave the pad off the unused forecast.

        Padding protects against usage bursts, i.e. against the unused
        amount dipping below the forecast.
        """
        pads = np.array(
            [self._pad_tracker(vm.vm_id, k).pad() for k in range(NUM_RESOURCES)]
        )
        return raw - pads

    def on_slot_end(self, slot: int, outcomes: dict[int, SlotOutcome]) -> None:
        """Base error tracking plus padding-tracker updates."""
        super().on_slot_end(slot, outcomes)
        # Feed the padding trackers with per-slot usage and forecast errors.
        for vm_id, outcome in outcomes.items():
            demand = outcome.primary_demand.as_array()
            actual_unused = outcome.unused.as_array()
            forecast = self._window_forecast.get(vm_id)
            for k in range(NUM_RESOURCES):
                tracker = self._pad_tracker(vm_id, k)
                tracker.observe_usage(demand[k])
                if forecast is not None:
                    # Under-prediction of *usage* == over-prediction of
                    # unused: actual unused below the forecast.
                    tracker.observe_error(
                        predicted=actual_unused[k], actual=forecast[k]
                    )
