"""RCCR baseline [Carvalho et al., SoCC 2014] as the paper implements it.

Section IV: "For RCCR, we first used a time series forecasting
technique, i.e., Exponential Smoothing (ETS), to predict the amount of
unused resource of VMs.  Then we calculated confidence intervals and
chose the lower bound of the confidence interval as the predicted value
for a time window ΔW.  Finally, we randomly chose a VM that can satisfy
the resource demands of a job and allocated resource to the job without
considering job packing."

So, relative to CORP: ETS instead of DNN+HMM, no Eq. 21 gate, random
feasible VM, no packing — but it *is* opportunistic (it reallocates
predicted-unused resources).
"""

from __future__ import annotations

import numpy as np

from ..cluster.machine import VirtualMachine
from ..cluster.resources import NUM_RESOURCES
from ..core.provisioning import ProvisioningSchedulerBase
from ..forecast.confidence import z_value
from ..forecast.ets import HoltLinear, SimpleExponentialSmoothing

__all__ = ["RccrScheduler"]


class RccrScheduler(ProvisioningSchedulerBase):
    """ETS + confidence-interval opportunistic provisioning."""

    name = "RCCR"
    supports_opportunistic = True

    def __init__(
        self,
        *,
        window_slots: int = 6,
        confidence_level: float = 0.9,
        alpha: float = 0.3,
        #: Trend smoothing; 0 selects simple (level-only) exponential
        #: smoothing — the paper's literal "Exponential Smoothing (ETS)"
        #: — which is far more robust on patternless series than a
        #: trend-extrapolating variant.
        beta: float = 0.0,
        history_slots: int = 60,
        error_tolerance: float = 0.75,
        seed: int = 0,
    ) -> None:
        super().__init__(
            window_slots=window_slots,
            error_tolerance=error_tolerance,
            seed=seed,
        )
        if history_slots < 2:
            raise ValueError("history_slots must be >= 2")
        self.confidence_level = confidence_level
        self.alpha = alpha
        self.beta = beta
        self.history_slots = history_slots
        self._z = z_value(confidence_level)

    # ------------------------------------------------------------------
    def prepare(self, history) -> None:
        """Offline phase: seed σ̂ from historical forecasting errors.

        The paper's RCCR "calculated confidence intervals" from
        historical data; without seeding, the CI lower bound starts at
        the raw forecast and the early windows over-promise.  For each
        historical short job we fit the ETS on a prefix of its unused
        series and score the ``window_slots``-ahead forecast against the
        realized window mean, in fraction-of-request units (the same
        commitment-fraction scale the runtime trackers use).
        """
        horizon = self.window_slots
        samples: list[np.ndarray] = []
        for record in history:
            series = 1.0 - record.utilization_series()
            n = series.shape[0]
            if n < 2 * horizon + 2:
                continue
            for split in range(horizon + 2, n - horizon, horizon):
                errs = np.empty(series.shape[1])
                for k in range(series.shape[1]):
                    ets = self._make_forecaster().fit(series[:split, k])
                    forecast = max(ets.forecast(horizon), 0.0)
                    actual = series[split : split + horizon, k].mean()
                    errs[k] = actual - forecast
                samples.append(errs)
            if len(samples) >= 150:
                break
        if samples:
            arr = np.asarray(samples)
            # Pair-average to approximate VM granularity, where ~2 jobs'
            # independent errors partially cancel (same reasoning as
            # CORP's seeding; job-level tails would inflate σ̂).
            if arr.shape[0] >= 2:
                half = (arr.shape[0] // 2) * 2
                arr = 0.5 * (arr[:half:2] + arr[1:half:2])
            for k in range(arr.shape[1]):
                self.raw_errors.trackers[k].seed(arr[:, k])
                self.gate.trackers[k].seed(
                    arr[:, k] + float(np.std(arr[:, k], ddof=1)) * self._z
                )

    # ------------------------------------------------------------------
    def predict_vm_unused(self, vm: VirtualMachine) -> np.ndarray:
        """Holt ETS per resource over the VM's recent unused history."""
        history = vm.unused_history(last=self.history_slots)
        out = np.zeros(NUM_RESOURCES)
        if history.shape[0] < 2:
            return out  # no history yet: predict no reusable slack
        for k in range(NUM_RESOURCES):
            ets = self._make_forecaster().fit(history[:, k])
            out[k] = max(ets.forecast(self.window_slots), 0.0)
        return out

    def _make_forecaster(self):
        """Simple ES when ``beta == 0``, Holt's linear trend otherwise."""
        if self.beta <= 0.0:
            return SimpleExponentialSmoothing(self.alpha)
        return HoltLinear(self.alpha, self.beta)

    def adjust_forecast(self, raw: np.ndarray, vm: VirtualMachine) -> np.ndarray:
        """Lower bound of the confidence interval (the paper's choice).

        σ̂ is tracked in commitment-fraction units, hence the rescale.
        """
        return raw - self.raw_errors.sigmas() * self._z * vm.committed().as_array()

    def opportunistic_allowed(self) -> bool:
        """RCCR has no Eq. 21 preemption gate — reuse is always on."""
        return True
