"""Baseline provisioning schemes the paper compares against (Section IV).

RCCR [4] (ETS + confidence interval, opportunistic), CloudScale [26]
(PRESS prediction + adaptive padding, no reuse) and DRA [36]
(share/demand capacity redistribution, no reuse).
"""

from .cloudscale import CloudScaleScheduler
from .dra import DraScheduler
from .rccr import RccrScheduler

__all__ = ["CloudScaleScheduler", "DraScheduler", "RccrScheduler"]
