"""Cloud-cluster simulation substrate.

Discrete-time-slot simulator of PMs, VMs, jobs and SLOs — the testbed
Section IV's experiments run on (Clemson Palmetto cluster / Amazon EC2,
both substituted by :class:`ClusterProfile` instances; see DESIGN.md §2).
"""

from .bandwidth import BandwidthModel
from .job import Job, JobState
from .machine import PhysicalMachine, Placement, SlotOutcome, VirtualMachine
from .metrics import (
    MetricsRecorder,
    overall_utilization,
    overall_wastage,
    utilization,
    wastage,
)
from .profiles import ClusterProfile
from .resources import DEFAULT_WEIGHTS, NUM_RESOURCES, ResourceKind, ResourceVector
from .scheduler import LatencyMeter, PredictionLog, Scheduler
from .shards import ScaleConfig, ShardedCandidateIndex
from .simulator import ClusterSimulator, SimulationConfig, SimulationResult
from .slo import SloSpec, SloTracker

__all__ = [
    "BandwidthModel",
    "Job",
    "JobState",
    "PhysicalMachine",
    "Placement",
    "SlotOutcome",
    "VirtualMachine",
    "MetricsRecorder",
    "utilization",
    "overall_utilization",
    "wastage",
    "overall_wastage",
    "ClusterProfile",
    "DEFAULT_WEIGHTS",
    "NUM_RESOURCES",
    "ResourceKind",
    "ResourceVector",
    "LatencyMeter",
    "PredictionLog",
    "ScaleConfig",
    "Scheduler",
    "ShardedCandidateIndex",
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "SloSpec",
    "SloTracker",
]
