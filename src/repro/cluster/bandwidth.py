"""Bandwidth accounting (Section IV's network setting).

The evaluation fixes each server's bandwidth at 1 GB/s and each
short-lived job's consumption at 0.02 MB/s [40]; bandwidth is *not* one
of the ``l = 3`` allocatable resource types because, like storage, it is
never the bottleneck.  This module makes that claim checkable: it
computes per-PM bandwidth utilization from the live placements so tests
(and operators) can verify the non-bottleneck assumption instead of
taking it on faith.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .machine import PhysicalMachine

__all__ = ["BandwidthModel"]


@dataclass(frozen=True)
class BandwidthModel:
    """Per-node bandwidth budget and per-job consumption.

    Defaults are the paper's: 1 GB/s per server, 0.02 MB/s per
    short-lived job.
    """

    node_gbps: float = 1.0
    per_job_mbps: float = 0.02

    def __post_init__(self) -> None:
        if self.node_gbps <= 0:
            raise ValueError("node_gbps must be positive")
        if self.per_job_mbps < 0:
            raise ValueError("per_job_mbps must be non-negative")

    @property
    def node_capacity_mbps(self) -> float:
        """Node budget in MB/s (1 GB/s = 1000 MB/s, as in [40])."""
        return self.node_gbps * 1000.0

    def pm_usage_fraction(self, pm: PhysicalMachine) -> float:
        """Fraction of one PM's bandwidth its resident jobs consume."""
        n_jobs = sum(len(vm.placements) for vm in pm.vms)
        return n_jobs * self.per_job_mbps / self.node_capacity_mbps

    def usage_by_pm(self, pms: Iterable[PhysicalMachine]) -> Mapping[int, float]:
        """Per-PM bandwidth utilization fractions."""
        return {pm.pm_id: self.pm_usage_fraction(pm) for pm in pms}

    def is_bottleneck(self, pms: Iterable[PhysicalMachine], threshold: float = 0.5) -> bool:
        """Does any PM exceed ``threshold`` of its bandwidth budget?

        Section IV's setup implies this stays False throughout — the
        integration tests assert it on live simulations.
        """
        return any(f > threshold for f in self.usage_by_pm(pms).values())

    def max_supported_jobs_per_node(self) -> int:
        """Jobs one node can carry before saturating its bandwidth."""
        if self.per_job_mbps == 0:
            raise ValueError("per-job bandwidth is zero; capacity is unbounded")
        # Guard the floor against float-division artifacts (1000/0.02
        # evaluates to 49999.999...).
        return int(self.node_capacity_mbps / self.per_job_mbps + 1e-9)
