"""Service Level Objective model and violation tracking.

Section IV: "SLO is specified by using a threshold on the response time
of a job, and the threshold is set based on the execution time of a task
in the trace" and "the SLO violation occurs when a job's response time
exceeds the threshold on its response time."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .job import Job

__all__ = ["SloSpec", "SloTracker"]


@dataclass(frozen=True)
class SloSpec:
    """Response-time SLO derived from nominal execution time.

    A job with nominal runtime ``n`` slots violates its SLO when its
    response time (queueing + execution, in slots) exceeds
    ``ceil(slack_factor * n)``.

    Parameters
    ----------
    slack_factor:
        Multiplicative headroom over the nominal runtime; 1.2 means a job
        may run 20% longer than uncontended before violating.
    """

    slack_factor: float = 1.2

    def __post_init__(self) -> None:
        if self.slack_factor < 1.0:
            raise ValueError("slack_factor must be >= 1 (threshold below nominal "
                             "runtime would violate every job)")

    def threshold_slots(self, job: Job) -> int:
        """Response-time threshold for ``job``, in slots."""
        return max(1, int(-(-self.slack_factor * job.nominal_slots // 1)))

    def is_violated(self, job: Job) -> bool:
        """Whether a *completed* job violated its SLO."""
        response = job.response_slots()
        if response is None:
            raise ValueError(f"job {job.job_id} has not completed")
        return response > self.threshold_slots(job)


@dataclass
class SloTracker:
    """Accumulates per-job SLO outcomes over a simulation run."""

    spec: SloSpec = field(default_factory=SloSpec)
    completed: int = 0
    violated: int = 0
    #: job_id -> (response_slots, threshold_slots, violated)
    outcomes: dict[int, tuple[int, int, bool]] = field(default_factory=dict)

    def record(self, job: Job) -> bool:
        """Record a completed job; returns whether it violated."""
        response = job.response_slots()
        if response is None:
            raise ValueError(f"job {job.job_id} has not completed")
        threshold = self.spec.threshold_slots(job)
        bad = response > threshold
        self.completed += 1
        self.violated += int(bad)
        self.outcomes[job.job_id] = (response, threshold, bad)
        return bad

    @property
    def violation_rate(self) -> float:
        """Fraction of completed jobs that violated (0 when none completed)."""
        if self.completed == 0:
            return 0.0
        return self.violated / self.completed
