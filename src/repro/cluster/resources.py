"""Multi-resource vectors for the cloud simulator.

The paper models ``l`` resource types per VM (Section II); the evaluation
uses ``l = 3``: CPU, memory and storage (Table II).  All per-job demands,
per-VM capacities, allocations and predictions in this package are
:class:`ResourceVector` instances — thin, immutable wrappers around a
float64 NumPy array so that the arithmetic stays vectorized.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "ResourceKind",
    "ResourceVector",
    "NUM_RESOURCES",
    "DEFAULT_WEIGHTS",
]


class ResourceKind(IntEnum):
    """Index of each resource type inside a :class:`ResourceVector`.

    The ordering matches the paper's running example (CPU first; see
    Section III-A.1a: "suppose the first resource type ... is CPU").
    """

    CPU = 0
    MEM = 1
    STORAGE = 2

    @property
    def label(self) -> str:
        """Human-readable label used in reports (e.g. ``"CPU"``)."""
        return self.name


#: Number of resource types ``l`` used throughout the evaluation (Table II).
NUM_RESOURCES: int = len(ResourceKind)

#: Weights :math:`\omega_j` for the overall utilization / wastage
#: (Eq. 2 / Eq. 4).  The paper sets CPU/MEM/storage to 0.4/0.4/0.2 because
#: "storage is not the bottleneck resource" (Section IV-A).  The array is
#: read-only: it is shared as a default argument across every metrics
#: call, so an in-place mutation would silently corrupt all later calls.
DEFAULT_WEIGHTS: np.ndarray = np.array([0.4, 0.4, 0.2], dtype=np.float64)
DEFAULT_WEIGHTS.setflags(write=False)


class ResourceVector:
    """An immutable vector of per-resource quantities.

    Supports elementwise arithmetic with other vectors and scalars, and
    the comparisons the allocation algorithms need (``fits_within`` for
    capacity checks, ``dominant`` for the packing strategy).

    Parameters
    ----------
    values:
        Length-``NUM_RESOURCES`` sequence of quantities, ordered by
        :class:`ResourceKind`.
    """

    __slots__ = ("_v", "_t")

    def __init__(self, values: Sequence[float] | np.ndarray) -> None:
        v = np.asarray(values, dtype=np.float64)
        if v.shape != (NUM_RESOURCES,):
            raise ValueError(
                f"ResourceVector needs {NUM_RESOURCES} entries, got shape {v.shape}"
            )
        v = v.copy()
        v.setflags(write=False)
        self._v = v
        self._t: tuple[float, ...] | None = None

    @classmethod
    def _wrap(cls, values: np.ndarray) -> "ResourceVector":
        """Adopt a freshly computed float64 array without copy/validation.

        Internal fast path for arithmetic results and other arrays this
        class just produced (or immutable views): the caller guarantees
        shape ``(NUM_RESOURCES,)`` float64 and exclusive/immutable
        ownership, so the public constructor's copy is unnecessary.
        """
        self = cls.__new__(cls)
        values.setflags(write=False)
        self._v = values
        self._t = None
        return self

    def _tuple(self) -> tuple[float, ...]:
        """Cached plain-float view; comparisons on ``l``-length vectors
        are much faster on Python floats than through NumPy reductions."""
        t = self._t
        if t is None:
            t = self._t = tuple(self._v.tolist())
        return t

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls) -> "ResourceVector":
        """All-zero vector."""
        return cls._wrap(np.zeros(NUM_RESOURCES))

    @classmethod
    def full(cls, value: float) -> "ResourceVector":
        """Vector with every component equal to ``value``."""
        return cls._wrap(np.full(NUM_RESOURCES, float(value)))

    @classmethod
    def of(cls, cpu: float = 0.0, mem: float = 0.0, storage: float = 0.0) -> "ResourceVector":
        """Named-component constructor."""
        return cls([cpu, mem, storage])

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def cpu(self) -> float:
        """CPU component (cores)."""
        return float(self._v[ResourceKind.CPU])

    @property
    def mem(self) -> float:
        """Memory component (GB)."""
        return float(self._v[ResourceKind.MEM])

    @property
    def storage(self) -> float:
        """Storage component (GB)."""
        return float(self._v[ResourceKind.STORAGE])

    def as_array(self) -> np.ndarray:
        """Read-only NumPy view of the underlying values."""
        return self._v

    def __getitem__(self, kind: ResourceKind | int) -> float:
        return float(self._v[int(kind)])

    def __iter__(self) -> Iterator[float]:
        return iter(self._v.tolist())

    def __len__(self) -> int:
        return NUM_RESOURCES

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: "ResourceVector | float | int") -> np.ndarray:
        if isinstance(other, ResourceVector):
            return other._v
        return np.float64(other)

    def __add__(self, other: "ResourceVector | float") -> "ResourceVector":
        return ResourceVector._wrap(self._v + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other: "ResourceVector | float") -> "ResourceVector":
        return ResourceVector._wrap(self._v - self._coerce(other))

    def __rsub__(self, other: "ResourceVector | float") -> "ResourceVector":
        return ResourceVector._wrap(self._coerce(other) - self._v)

    def __mul__(self, other: "ResourceVector | float") -> "ResourceVector":
        return ResourceVector._wrap(self._v * self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other: "ResourceVector | float") -> "ResourceVector":
        return ResourceVector._wrap(self._v / self._coerce(other))

    def __neg__(self) -> "ResourceVector":
        return ResourceVector._wrap(-self._v)

    # ------------------------------------------------------------------
    # comparisons / predicates
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return bool(np.array_equal(self._v, other._v))

    def __hash__(self) -> int:
        return hash(self._v.tobytes())

    def fits_within(self, capacity: "ResourceVector", *, atol: float = 1e-9) -> bool:
        """True iff every component is ``<=`` the capacity's (within atol).

        This is the feasibility test used when choosing a VM for a job
        entity (Section III-B).  It sits on the scheduler's hottest path
        (tens of thousands of calls per run), hence the plain-float loop
        instead of a NumPy reduction.
        """
        cap = capacity._t
        if cap is None:
            cap = capacity._tuple()
        for a, b in zip(self._tuple(), cap):
            if a > b + atol:
                return False
        return True

    def is_nonnegative(self, *, atol: float = 1e-9) -> bool:
        """True iff every component is ``>= -atol``."""
        for a in self._tuple():
            if a < -atol:
                return False
        return True

    def any_positive(self, *, atol: float = 1e-9) -> bool:
        """True iff at least one component exceeds ``atol``."""
        for a in self._tuple():
            if a > atol:
                return True
        return False

    # ------------------------------------------------------------------
    # elementwise helpers
    # ------------------------------------------------------------------
    def clip_nonnegative(self) -> "ResourceVector":
        """Elementwise ``max(x, 0)``."""
        return ResourceVector._wrap(np.maximum(self._v, 0.0))

    def minimum(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise minimum."""
        return ResourceVector._wrap(np.minimum(self._v, other._v))

    def maximum(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise maximum."""
        return ResourceVector._wrap(np.maximum(self._v, other._v))

    def total(self) -> float:
        """Sum of all components."""
        return float(self._v.sum())

    def weighted_total(self, weights: np.ndarray | Sequence[float] = DEFAULT_WEIGHTS) -> float:
        """Weighted sum :math:`\\sum_j \\omega_j x_j` (used by Eq. 2 / Eq. 4)."""
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (NUM_RESOURCES,):
            raise ValueError("weights must have one entry per resource type")
        return float(self._v @ w)

    def dominant(self) -> ResourceKind:
        """The job's *dominant resource*: the type with the largest demand.

        Section III-B: "Each job has a dominant resource, defined as the
        one that requires the most amount of resource."  Ties resolve to
        the lowest-index resource (CPU first), which keeps the packing
        deterministic.
        """
        return ResourceKind(int(np.argmax(self._v)))

    def normalized_by(self, reference: "ResourceVector") -> "ResourceVector":
        """Elementwise division by a reference vector.

        Used for the unused-resource *volume* (Eq. 22), where the
        reference is the max capacity per type across all VMs.  Zero
        reference components (a resource no VM offers) contribute zero.
        """
        out = np.zeros(NUM_RESOURCES)
        nz = reference._v > 0
        out[nz] = self._v[nz] / reference._v[nz]
        return ResourceVector._wrap(out)

    # ------------------------------------------------------------------
    # aggregation over collections
    # ------------------------------------------------------------------
    @staticmethod
    def sum(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Sum of a (possibly empty) iterable of vectors."""
        acc = np.zeros(NUM_RESOURCES)
        for vec in vectors:
            acc += vec._v
        return ResourceVector._wrap(acc)

    @staticmethod
    def elementwise_max(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Elementwise maximum of a (possibly empty) iterable of vectors."""
        acc = np.zeros(NUM_RESOURCES)
        for vec in vectors:
            np.maximum(acc, vec._v, out=acc)
        return ResourceVector._wrap(acc)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = ", ".join(f"{k.label.lower()}={self._v[k]:.4g}" for k in ResourceKind)
        return f"ResourceVector({parts})"
