"""Shard-partitioned cluster state for hyperscale placement.

The per-call :class:`~repro.core.vm_selection.CandidateSet` rebuild is
fine at the paper's testbed sizes (≤ 100 VMs); at 10k+ VMs rebuilding an
``(n_vms, l)`` matrix from Python attribute reads every slot dominates
the placement path.  This module grows that structure into a
*persistent*, incrementally-maintained availability index partitioned
into VM-pool shards:

* :class:`ScaleConfig` — the typed scale knobs (`shards`, `chunk_size`,
  index backend) the run entry points accept as ``scale=`` and the CLI
  exposes as ``--shards`` / ``--chunk-size``.
* :class:`ShardedCandidateIndex` — N struct-of-arrays shards (each one a
  :class:`CandidateSet` plus liveness/version lanes), per-shard
  feasible-mask/volume kernels, and a cross-shard argmin aggregation
  that reproduces the global Eq. 22 most-matched choice *bit-identically*
  (the scalar loop in :mod:`repro.core.vm_selection` remains the
  differential oracle for ``repro check --differential``).

Dirty tracking is version-based: every :class:`VirtualMachine` bumps a
``state_version`` counter whenever its commitment, capacity or liveness
changes (placements landing, completions, crashes, revocations), and
:meth:`ShardedCandidateIndex.refresh` recomputes only the rows whose
version moved — a slot that touched two shards rewrites two shards, the
other N−2 cost one integer sweep each.  Exact equality (same winners,
same rng draws, same tie-breaks) against the single-``CandidateSet``
path is property-tested for any shard count, including shards > VMs and
empty shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from .resources import NUM_RESOURCES, ResourceVector

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.vm_selection import CandidateSet
    from .machine import VirtualMachine

__all__ = ["ScaleConfig", "ShardedCandidateIndex"]

#: Index backends ``ScaleConfig`` accepts.  ``"dense"`` is the NumPy
#: struct-of-arrays implementation below; the name is a seam for a
#: future compiled backend (see ROADMAP "raw speed round 2").
INDEX_BACKENDS: tuple[str, ...] = ("dense",)


@dataclass(frozen=True)
class ScaleConfig:
    """Scale knobs of a run (hyperscale sharding and streaming).

    Attributes
    ----------
    shards:
        Number of VM-pool shards the availability index is partitioned
        into.  ``1`` (the default) keeps the single-matrix layout and is
        byte-identical to pre-sharding output on every testbed; higher
        counts bound per-shard recompute work on clusters with 10k+ VMs.
    chunk_size:
        Records per chunk for streaming trace generation
        (:meth:`~repro.trace.generator.GoogleTraceGenerator.generate_chunks`)
        — million-job workloads never materialize in memory at once.
    index_backend:
        Availability-index implementation; only ``"dense"`` (NumPy
        struct-of-arrays) exists today.
    """

    shards: int = 1
    chunk_size: int = 4096
    index_backend: str = "dense"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.index_backend not in INDEX_BACKENDS:
            raise ValueError(
                f"unknown index backend {self.index_backend!r} "
                f"(expected one of {INDEX_BACKENDS})"
            )


def _candidate_set_cls() -> "type[CandidateSet]":
    # Deferred: ``repro.core`` imports ``repro.cluster`` at module level;
    # importing back at class-definition time would cycle the packages.
    from ..core.vm_selection import CandidateSet

    return CandidateSet


class _Shard:
    """One struct-of-arrays partition of the availability index.

    Wraps a :class:`CandidateSet` (the vectorized mask/volume kernels
    stay single-sourced there) with the lanes sharding adds: a liveness
    mask, the per-row ``state_version`` last synced, and the nominal
    row capacities ``release`` restores toward.
    """

    __slots__ = ("cset", "online", "versions", "caps")

    def __init__(
        self, vms: Sequence["VirtualMachine"], matrix: np.ndarray
    ) -> None:
        self.cset = _candidate_set_cls()(vms, matrix)
        self.online = np.ones(len(vms), dtype=bool)
        #: ``-1`` forces the first ``sync`` to populate every row.
        self.versions = np.full(len(vms), -1, dtype=np.int64)
        self.caps = self.cset.matrix.copy()

    def __len__(self) -> int:
        return len(self.cset.vms)

    def sync(self) -> bool:
        """Re-read rows whose VM ``state_version`` moved; True if any did.

        The integer sweep is the shard's dirty check; matrix writes —
        the expensive part — happen only for rows that actually changed,
        so an untouched shard costs one comparison pass and no writes.
        """
        changed = False
        versions = self.versions
        online = self.online
        matrix = self.cset.matrix
        for i, vm in enumerate(self.cset.vms):
            version = vm.state_version
            if version == versions[i]:
                continue
            versions[i] = version
            live = vm.online
            online[i] = live
            if live:
                matrix[i] = vm.unallocated_array()
            else:
                matrix[i] = 0.0
            changed = True
        return changed

    def masked_feasible(self, demand: ResourceVector) -> np.ndarray:
        """Feasibility of each row, offline rows excluded."""
        mask = self.cset.feasible_mask(demand)
        if not self.online.all():
            mask &= self.online
        return mask


class ShardedCandidateIndex:
    """A candidate pool as N struct-of-arrays shards.

    Duck-compatible with :class:`CandidateSet` everywhere the placement
    path uses one — ``select_most_matched`` / ``select_random_feasible``
    / ``min_feasible_volume`` / ``consume`` / ``availability`` /
    ``feasible_count`` — and iterable as ``(vm, ResourceVector)`` pairs
    (online rows only), so the invariant checker's scalar re-derivation
    and custom ``choose_vm`` overrides keep working unchanged.

    Two construction modes:

    * ``ShardedCandidateIndex(vms, matrix, shards=...)`` — a static
      pool over explicit availability rows (the per-window
      opportunistic pools, synthetic benchmark drivers).
    * :meth:`for_vms` — the *persistent* primary pool: rows mirror each
      VM's unallocated capacity and liveness, kept current by
      :meth:`refresh` through the VM ``state_version`` counters instead
      of per-call rebuilds.

    Selection semantics are exactly :class:`CandidateSet`'s: rows are
    partitioned contiguously (global row order preserved), per-row
    volumes are identical scalars, the cross-shard argmin compares the
    same floats the global ``min`` would, the tie window is evaluated
    per row against the same global best, and the uniform-random choice
    consumes exactly one ``rng.integers(n_feasible)`` draw over the
    concatenated feasible order.  With one shard and every VM online,
    the selectors *delegate* to the shard's ``CandidateSet`` methods —
    the single-shard configuration literally runs the original code.
    """

    __slots__ = ("source_vms", "n_shards", "_shards", "_locate", "_tracking")

    def __init__(
        self,
        vms: Sequence["VirtualMachine"],
        matrix: np.ndarray,
        *,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.source_vms = vms
        self.n_shards = shards
        vms = list(vms)
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.size == 0:
            matrix = np.zeros((len(vms), NUM_RESOURCES))
        if matrix.shape != (len(vms), NUM_RESOURCES):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match "
                f"{len(vms)} VMs x {NUM_RESOURCES} resources"
            )
        # Contiguous partition (np.array_split sizing): global row order
        # is the concatenation of the shards, which is what makes every
        # aggregation below order-identical to the unsharded matrix.
        bounds = np.linspace(0, len(vms), shards + 1).astype(int)
        self._shards = [
            _Shard(vms[lo:hi], matrix[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        self._locate: dict[int, tuple[_Shard, int]] = {}
        for shard in self._shards:
            for row, vm in enumerate(shard.cset.vms):
                self._locate[vm.vm_id] = (shard, row)
        self._tracking = False

    @classmethod
    def for_vms(
        cls, vms: Sequence["VirtualMachine"], *, shards: int = 1
    ) -> "ShardedCandidateIndex":
        """Persistent index over ``vms``: rows filled by :meth:`refresh`."""
        index = cls(vms, np.zeros((len(vms), NUM_RESOURCES)), shards=shards)
        index._tracking = True
        return index

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Sync rows with VM state; returns how many shards were touched.

        Only meaningful for :meth:`for_vms` indexes.  Shards whose VMs'
        ``state_version`` counters are all unmoved are skipped (their
        sweep finds nothing to rewrite) — the shard-local dirty tracking
        that lets a slot recompute only the shards it touched.
        """
        if not self._tracking:
            raise RuntimeError(
                "refresh() requires a persistent index (use for_vms())"
            )
        return sum(1 for shard in self._shards if shard.sync())

    def consume(self, vm: "VirtualMachine", amount: np.ndarray) -> None:
        """Decrement ``vm``'s row by ``amount``, clipping at zero."""
        entry = self._locate.get(vm.vm_id)
        if entry is None:  # pragma: no cover - placement outside the pool
            return
        shard, row = entry
        matrix = shard.cset.matrix
        np.clip(matrix[row] - amount, 0.0, None, out=matrix[row])

    def release(self, vm: "VirtualMachine", amount: np.ndarray) -> None:
        """Return ``amount`` to ``vm``'s row, capped at its nominal row.

        The synthetic counterpart of a completion for drivers that step
        the index directly (the ``--scale`` benchmark); the scheduler
        path instead refreshes rows from VM state.
        """
        entry = self._locate.get(vm.vm_id)
        if entry is None:  # pragma: no cover - release outside the pool
            return
        shard, row = entry
        matrix = shard.cset.matrix
        np.minimum(matrix[row] + amount, shard.caps[row], out=matrix[row])

    # ------------------------------------------------------------------
    # CandidateSet-compatible views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live candidate rows (matches the per-call pools)."""
        return sum(int(shard.online.sum()) for shard in self._shards)

    def __iter__(self) -> Iterator[tuple["VirtualMachine", ResourceVector]]:
        for shard in self._shards:
            matrix = shard.cset.matrix
            online = shard.online
            for i, vm in enumerate(shard.cset.vms):
                if online[i]:
                    yield vm, ResourceVector(matrix[i])

    def availability(self, vm: "VirtualMachine") -> ResourceVector | None:
        """Current availability row of ``vm`` (None if absent/offline)."""
        entry = self._locate.get(vm.vm_id)
        if entry is None:
            return None
        shard, row = entry
        if not shard.online[row]:
            return None
        return ResourceVector(shard.cset.matrix[row])

    def feasible_mask(self, demand: ResourceVector) -> np.ndarray:
        """Global-row-order boolean mask (offline rows are infeasible)."""
        if not self._shards:  # pragma: no cover - shards >= 1 by contract
            return np.zeros(0, dtype=bool)
        return np.concatenate(
            [shard.masked_feasible(demand) for shard in self._shards]
        )

    def feasible_count(self, demand: ResourceVector) -> int:
        """How many live candidates the demand fits within."""
        return sum(
            int(shard.masked_feasible(demand).sum()) for shard in self._shards
        )

    # ------------------------------------------------------------------
    # selection kernels (cross-shard aggregation)
    # ------------------------------------------------------------------
    def _single_delegate(self) -> "CandidateSet | None":
        """The lone shard's ``CandidateSet`` when delegation is exact."""
        if self.n_shards == 1 and self._shards[0].online.all():
            return self._shards[0].cset
        return None

    def select_most_matched(
        self, demand: ResourceVector, reference: ResourceVector
    ) -> "VirtualMachine | None":
        """Eq. 22 most-matched choice via cross-shard argmin aggregation.

        Pass 1 finds each shard's feasible volume minimum and reduces
        them to the global best — float ``min`` is exact, so this equals
        the unsharded ``volumes[mask].min()``.  Pass 2 applies the
        (scale-invariant) tie window per shard against that global best
        and takes the lowest ``vm_id`` among the tied rows, reproducing
        the single-matrix tie-break bit-identically.
        """
        single = self._single_delegate()
        if single is not None:
            return single.select_most_matched(demand, reference)
        from ..core.vm_selection import tie_window

        per_shard: list[tuple[_Shard, np.ndarray, np.ndarray]] = []
        best = np.inf
        for shard in self._shards:
            if not len(shard):
                continue
            mask = shard.masked_feasible(demand)
            if not mask.any():
                continue
            volumes = shard.cset.volumes(reference)
            local = volumes[mask].min()
            if local < best:
                best = local
            per_shard.append((shard, mask, volumes))
        if not per_shard:
            return None
        cut = best + tie_window(best)
        best_vm: "VirtualMachine | None" = None
        best_id = -1
        for shard, mask, volumes in per_shard:
            tied = mask & (volumes <= cut)
            (rows,) = np.nonzero(tied)
            if rows.size == 0:
                continue
            ids = shard.cset._ids[rows]
            pick = int(np.argmin(ids))
            if best_vm is None or int(ids[pick]) < best_id:
                best_id = int(ids[pick])
                best_vm = shard.cset.vms[rows[pick]]
        return best_vm

    def min_feasible_volume(
        self, demand: ResourceVector, reference: ResourceVector
    ) -> float | None:
        """Smallest feasible Eq. 22 volume across shards (None if none)."""
        single = self._single_delegate()
        if single is not None:
            return single.min_feasible_volume(demand, reference)
        best = np.inf
        found = False
        for shard in self._shards:
            if not len(shard):
                continue
            mask = shard.masked_feasible(demand)
            if not mask.any():
                continue
            local = shard.cset.volumes(reference)[mask].min()
            found = True
            if local < best:
                best = local
        return float(best) if found else None

    def select_random_feasible(
        self, demand: ResourceVector, rng: np.random.Generator
    ) -> "VirtualMachine | None":
        """Uniform-random feasible choice, one rng draw total.

        The draw indexes the concatenated per-shard feasible order —
        the same global feasible order (and therefore the same chosen
        VM for the same stream state) as the unsharded mask.
        """
        single = self._single_delegate()
        if single is not None:
            return single.select_random_feasible(demand, rng)
        masks = [shard.masked_feasible(demand) for shard in self._shards]
        counts = [int(mask.sum()) for mask in masks]
        total = sum(counts)
        if total == 0:
            return None
        pick = int(rng.integers(total))
        for shard, mask, count in zip(self._shards, masks, counts):
            if pick < count:
                (rows,) = np.nonzero(mask)
                return shard.cset.vms[rows[pick]]
            pick -= count
        raise AssertionError("unreachable: pick exceeded feasible total")
