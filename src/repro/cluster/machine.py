"""Physical and virtual machines, placements, and per-VM accounting.

The cloud of Section II: physical machines (PMs) host virtual machines
(VMs); VM capacity spans multiple resource types; jobs receive VM
resources.  A :class:`Placement` binds one job to one VM in one of two
classes:

* **primary** — the job holds a reservation carved out of the VM's
  *unallocated* capacity; its reservation counts toward the VM's
  *commitment* (the denominator of the utilization metrics).
* **opportunistic** — the job rides on the *allocated-but-unused* slack
  of primary reservations; it adds no commitment but is squeezed first
  when actual primary demand rebounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from .job import Job, JobState
from .resources import NUM_RESOURCES, ResourceVector

__all__ = ["Placement", "VirtualMachine", "PhysicalMachine", "SlotOutcome"]


@dataclass
class Placement:
    """A job running on a VM.

    ``reserved`` is the commitment the placement holds (zero for
    opportunistic placements); ``granted_cap`` is an optional per-slot
    ceiling a scheduler may impose below the job's request (used by DRA's
    share-based redistribution).
    """

    job: Job
    vm: "VirtualMachine"
    reserved: ResourceVector
    opportunistic: bool
    granted_cap: Optional[ResourceVector] = None

    def effective_cap(self) -> ResourceVector:
        """The ceiling applied to this placement's grant each slot."""
        if self.granted_cap is not None:
            return self.granted_cap
        if self.opportunistic:
            return self.job.requested
        return self.reserved

    def effective_cap_array(self) -> np.ndarray:
        """Raw read-only view of :meth:`effective_cap` (hot-path variant)."""
        return self.effective_cap().as_array()


@dataclass(frozen=True)
class SlotOutcome:
    """What one VM did during one executed slot (for metrics/predictors)."""

    committed: ResourceVector
    primary_demand: ResourceVector
    opportunistic_demand: ResourceVector
    served_demand: ResourceVector
    unused: ResourceVector  # committed - primary demand, clipped at 0


class VirtualMachine:
    """One VM: capacity, placements, commitment and usage history."""

    def __init__(self, vm_id: int, capacity: ResourceVector, pm_id: int = 0) -> None:
        if not capacity.is_nonnegative() or not capacity.any_positive():
            raise ValueError("VM capacity must be non-negative and non-zero")
        self.vm_id = vm_id
        #: Nominal (provisioned) capacity; ``capacity`` reflects any
        #: transient revocation currently in force.
        self.base_capacity = capacity
        self._effective_capacity = capacity
        self._capacity_scale = 1.0
        #: Bumped whenever the effective capacity changes, so callers
        #: that memoize capacity-derived values (e.g. the simulator's
        #: ``max_vm_capacity``) can key their caches on it.
        self.capacity_version = 0
        #: Bumped whenever anything a placement index mirrors changes —
        #: commitment, effective capacity or liveness.  The sharded
        #: availability index (:mod:`repro.cluster.shards`) compares
        #: these counters to decide which rows to re-read, so every
        #: mutation path below must route through
        #: :meth:`_invalidate_commitment` (or bump explicitly, as
        #: :meth:`restore` does).
        self.state_version = 0
        #: Set by the owning simulator; notified (``notice_capacity_change``)
        #: whenever the effective capacity changes so its Eq. 22 reference
        #: cache can revalidate in O(1) rather than scanning all VMs.
        self._capacity_observer: object | None = None
        #: False while the VM is crashed (fault injection): it accepts
        #: no placements and executes no slots until restored.
        self.online = True
        self.pm_id = pm_id
        self.placements: list[Placement] = []
        # Incrementally maintained commitment total — committed() sits on
        # the scheduler's hottest path (feasibility scans over all VMs).
        self._committed = np.zeros(NUM_RESOURCES)
        # Commitment changes only when placements come and go, but the
        # derived vectors are read on every feasibility scan — memoize
        # them and invalidate on placement churn.
        self._committed_vec: ResourceVector | None = None
        self._unallocated_vec: ResourceVector | None = None
        #: Per-slot history of actual unused resource (n_slots, l) rows;
        #: this is the series the predictors train on.
        self._unused_history: list[np.ndarray] = []
        self._demand_history: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # capacity (revocation-aware)
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> ResourceVector:
        """Effective capacity: nominal, shrunk by any active revocation."""
        return self._effective_capacity

    def set_capacity_scale(self, scale: float) -> None:
        """Transiently scale the effective capacity (fault injection).

        ``scale=1.0`` restores the nominal capacity.  Commitments are
        *not* returned: while revoked, committed reservations may exceed
        what the VM can physically serve, and ``execute_slot``'s
        capacity clamp squeezes the placements — riders first.
        """
        scale = float(scale)
        if not 0.0 < scale <= 1.0:
            raise ValueError("capacity scale must be in (0, 1]")
        if scale == self._capacity_scale:
            return
        self._capacity_scale = scale
        if scale == 1.0:
            self._effective_capacity = self.base_capacity
        else:
            self._effective_capacity = ResourceVector._wrap(
                self.base_capacity.as_array() * scale
            )
        self.capacity_version += 1
        observer = self._capacity_observer
        if observer is not None:
            observer.notice_capacity_change()
        self._invalidate_commitment()

    # ------------------------------------------------------------------
    # commitment accounting
    # ------------------------------------------------------------------
    def _invalidate_commitment(self) -> None:
        self._committed_vec = None
        self._unallocated_vec = None
        self.state_version += 1

    def committed(self) -> ResourceVector:
        """Total primary reservations currently held on this VM."""
        vec = self._committed_vec
        if vec is None:
            vec = self._committed_vec = ResourceVector(self._committed)
        return vec

    def unallocated(self) -> ResourceVector:
        """Capacity not yet committed to any primary reservation."""
        vec = self._unallocated_vec
        if vec is None:
            vec = self._unallocated_vec = ResourceVector._wrap(
                np.maximum(self.capacity.as_array() - self._committed, 0.0)
            )
        return vec

    def unallocated_array(self) -> np.ndarray:
        """Read-only array view of :meth:`unallocated` (hot-path variant).

        The placement path stacks these rows into a
        :class:`~repro.core.vm_selection.CandidateSet` matrix; going
        through the memoized vector keeps the two views consistent.
        """
        return self.unallocated().as_array()

    def reserved_total(self) -> np.ndarray:
        """Σ reserved over primary placements, recomputed from scratch.

        Deliberately independent of the incrementally maintained
        ``_committed`` total: the invariant checker
        (:mod:`repro.check`) diffs the two to catch accounting drift,
        so this must not share that bookkeeping.
        """
        total = np.zeros(NUM_RESOURCES)
        for p in self.placements:
            if not p.opportunistic:
                total += p.reserved.as_array()
        return total

    def primary_demand(self) -> ResourceVector:
        """Current total demand of the primary placements."""
        return ResourceVector.sum(
            p.job.demand() for p in self.placements if not p.opportunistic
        )

    def opportunistic_demand(self) -> ResourceVector:
        """Current total demand of the opportunistic placements."""
        return ResourceVector.sum(
            p.job.demand() for p in self.placements if p.opportunistic
        )

    def actual_unused(self) -> ResourceVector:
        """Allocated-but-unused resource right now (``r − d``, Section II)."""
        return (self.committed() - self.primary_demand()).clip_nonnegative()

    def opportunistic_load(self) -> ResourceVector:
        """Demand already promised to opportunistic placements."""
        return self.opportunistic_demand()

    # ------------------------------------------------------------------
    # placement management
    # ------------------------------------------------------------------
    def can_reserve(self, amount: ResourceVector) -> bool:
        """Does ``amount`` fit in the unallocated capacity?"""
        return amount.fits_within(self.unallocated())

    def add_placement(self, placement: Placement) -> None:
        """Attach a placement, enforcing the reservation capacity check."""
        if placement.vm is not self:
            raise ValueError("placement bound to a different VM")
        if not placement.opportunistic and not self.can_reserve(placement.reserved):
            raise ValueError(
                f"VM {self.vm_id} cannot reserve {placement.reserved} "
                f"(unallocated {self.unallocated()})"
            )
        self.placements.append(placement)
        if not placement.opportunistic:
            self._committed += placement.reserved.as_array()
            self._invalidate_commitment()

    def remove_completed(self) -> list[Job]:
        """Drop placements whose jobs completed; return those jobs."""
        done = [p.job for p in self.placements if p.job.state is JobState.COMPLETED]
        if not done:
            return done
        for p in self.placements:
            if p.job.state is JobState.COMPLETED and not p.opportunistic:
                self._committed -= p.reserved.as_array()
        np.maximum(self._committed, 0.0, out=self._committed)  # float drift
        self._invalidate_commitment()
        self.placements = [
            p for p in self.placements if p.job.state is not JobState.COMPLETED
        ]
        return done

    # ------------------------------------------------------------------
    # fault injection (crash/restore, targeted eviction)
    # ------------------------------------------------------------------
    def evict_all(self) -> list[Job]:
        """Drop every placement, releasing all commitment; return the jobs."""
        jobs = [p.job for p in self.placements]
        self.placements = []
        self._committed[:] = 0.0
        self._invalidate_commitment()
        return jobs

    def evict_job(self, job_id: int) -> Optional[Job]:
        """Drop one job's placement (transient failure); None if absent."""
        for i, p in enumerate(self.placements):
            if p.job.job_id == job_id:
                del self.placements[i]
                if not p.opportunistic:
                    self._committed -= p.reserved.as_array()
                    np.maximum(self._committed, 0.0, out=self._committed)
                self._invalidate_commitment()
                return p.job
        return None

    def crash(self) -> list[Job]:
        """Take the VM offline, evicting everything and losing histories.

        A crashed VM executes no slots and accepts no placements; its
        usage histories are in-memory state and do not survive, so the
        predictors start cold after the restart.
        """
        self.online = False
        self._unused_history.clear()
        self._demand_history.clear()
        return self.evict_all()

    def restore(self) -> None:
        """Bring a crashed VM back online (empty, histories cold)."""
        self.online = True
        # Liveness is index-mirrored state: bump so persistent indexes
        # re-admit this VM's row (crash() bumped via evict_all()).
        self.state_version += 1

    # ------------------------------------------------------------------
    # slot execution
    # ------------------------------------------------------------------
    def execute_slot(self, slot: int) -> SlotOutcome:
        """Serve one slot: grant resources, advance jobs, record history.

        Primaries are served first, each up to ``min(demand, cap)``;
        whatever physical capacity remains is shared by opportunistic
        placements proportionally to their demand (they are squeezed
        first — they hold no commitment).

        Demands, caps and grants are handled as ``(n_placements, l)``
        arrays; the per-placement reference semantics are preserved (and
        property-tested against :mod:`repro.cluster._legacy`).
        """
        committed = self.committed()
        placements = self.placements
        n = len(placements)
        if n == 0:
            # Idle VM: nothing demands, nothing is served; unused slack
            # equals the (non-negative) commitment.
            zero = ResourceVector.zeros()
            self._unused_history.append(self._committed.copy())
            self._demand_history.append(np.zeros(NUM_RESOURCES))
            return SlotOutcome(
                committed=committed,
                primary_demand=zero,
                opportunistic_demand=zero,
                served_demand=zero,
                unused=committed,
            )

        cap_arr = self.capacity.as_array()
        demands = np.empty((n, NUM_RESOURCES))
        caps = np.empty((n, NUM_RESOURCES))
        opp = np.zeros(n, dtype=bool)
        for i, p in enumerate(placements):
            demands[i] = p.job.demand_array()
            caps[i] = p.effective_cap_array()
            opp[i] = p.opportunistic
        prim = ~opp
        grants = np.minimum(demands, caps)

        # --- primaries ---------------------------------------------------
        primary_demand = demands[prim].sum(axis=0)
        primary_granted = grants[prim].sum(axis=0)
        # Physical sanity: primaries cannot collectively exceed capacity.
        over = primary_granted > cap_arr + 1e-9
        if over.any():
            scale = np.ones(NUM_RESOURCES)
            scale[over] = cap_arr[over] / primary_granted[over]
            grants[prim] *= scale
            primary_granted = np.minimum(primary_granted, cap_arr)

        # --- opportunists -------------------------------------------------
        opp_demand = demands[opp].sum(axis=0)
        if opp.any():
            remaining = np.maximum(cap_arr - primary_granted, 0.0)
            scale = np.ones(NUM_RESOURCES)
            tight = opp_demand > remaining + 1e-12
            scale[tight] = np.where(
                opp_demand[tight] > 0, remaining[tight] / opp_demand[tight], 0.0
            )
            grants[opp] = np.minimum(demands[opp] * scale, caps[opp])

        # --- advance ------------------------------------------------------
        # Execution rate: min over demanded resources of granted/demand,
        # clipped to [0, 1]; a job with no current demand runs at full
        # speed (rows with no demanded resource reduce over +inf).
        needed = demands > 1e-12
        ratios = np.where(needed, grants / np.where(needed, demands, 1.0), np.inf)
        rates = np.clip(ratios.min(axis=1), 0.0, 1.0)
        served = np.minimum(grants, demands).sum(axis=0)
        for i, p in enumerate(placements):
            p.job.advance(rates[i], slot)

        unused = np.maximum(self._committed - primary_demand, 0.0)
        self._unused_history.append(unused)
        self._demand_history.append(primary_demand + opp_demand)
        return SlotOutcome(
            committed=committed,
            primary_demand=ResourceVector._wrap(primary_demand),
            opportunistic_demand=ResourceVector._wrap(opp_demand),
            served_demand=ResourceVector._wrap(served),
            unused=ResourceVector._wrap(unused),
        )

    # ------------------------------------------------------------------
    # histories (predictor inputs)
    # ------------------------------------------------------------------
    def unused_history(self, last: int | None = None) -> np.ndarray:
        """Per-slot actual unused resource, ``(n, l)`` array.

        ``last=k`` returns the most recent ``k`` rows; ``last=0`` is an
        empty window, not the full history (``0`` is falsy, so a
        truthiness check here would silently return everything).
        """
        hist = (
            self._unused_history[-last:] if last is not None and last > 0
            else self._unused_history if last is None
            else []
        )
        if not hist:
            return np.zeros((0, NUM_RESOURCES))
        return np.asarray(hist)

    def demand_history(self, last: int | None = None) -> np.ndarray:
        """Per-slot total demand served on this VM, ``(n, l)`` array.

        Window semantics match :meth:`unused_history` (``last=0`` is an
        empty window).
        """
        hist = (
            self._demand_history[-last:] if last is not None and last > 0
            else self._demand_history if last is None
            else []
        )
        if not hist:
            return np.zeros((0, NUM_RESOURCES))
        return np.asarray(hist)

    def __repr__(self) -> str:
        return (
            f"VirtualMachine(id={self.vm_id}, capacity={self.capacity}, "
            f"jobs={len(self.placements)})"
        )


class PhysicalMachine:
    """A server hosting VMs (bookkeeping only; contention is per-VM).

    The evaluation simulates each cluster node as a PM carrying VMs
    (Section IV's "we simulated a node as a PM").  VM capacities must fit
    within the PM.
    """

    def __init__(self, pm_id: int, capacity: ResourceVector) -> None:
        self.pm_id = pm_id
        self.capacity = capacity
        self.vms: list[VirtualMachine] = []

    def add_vm(self, vm: VirtualMachine) -> None:
        """Host a VM, enforcing the PM capacity envelope."""
        total = ResourceVector.sum(v.capacity for v in self.vms) + vm.capacity
        if not total.fits_within(self.capacity):
            raise ValueError(
                f"PM {self.pm_id} capacity {self.capacity} exceeded by VM set {total}"
            )
        vm.pm_id = self.pm_id
        self.vms.append(vm)

    def free_capacity(self) -> ResourceVector:
        """PM capacity not yet carved into VMs."""
        return (
            self.capacity - ResourceVector.sum(v.capacity for v in self.vms)
        ).clip_nonnegative()

    def __repr__(self) -> str:
        return f"PhysicalMachine(id={self.pm_id}, vms={len(self.vms)})"
