"""Physical and virtual machines, placements, and per-VM accounting.

The cloud of Section II: physical machines (PMs) host virtual machines
(VMs); VM capacity spans multiple resource types; jobs receive VM
resources.  A :class:`Placement` binds one job to one VM in one of two
classes:

* **primary** — the job holds a reservation carved out of the VM's
  *unallocated* capacity; its reservation counts toward the VM's
  *commitment* (the denominator of the utilization metrics).
* **opportunistic** — the job rides on the *allocated-but-unused* slack
  of primary reservations; it adds no commitment but is squeezed first
  when actual primary demand rebounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from .job import Job, JobState
from .resources import NUM_RESOURCES, ResourceVector

__all__ = ["Placement", "VirtualMachine", "PhysicalMachine", "SlotOutcome"]


@dataclass
class Placement:
    """A job running on a VM.

    ``reserved`` is the commitment the placement holds (zero for
    opportunistic placements); ``granted_cap`` is an optional per-slot
    ceiling a scheduler may impose below the job's request (used by DRA's
    share-based redistribution).
    """

    job: Job
    vm: "VirtualMachine"
    reserved: ResourceVector
    opportunistic: bool
    granted_cap: Optional[ResourceVector] = None

    def effective_cap(self) -> ResourceVector:
        """The ceiling applied to this placement's grant each slot."""
        if self.granted_cap is not None:
            return self.granted_cap
        if self.opportunistic:
            return self.job.requested
        return self.reserved


@dataclass(frozen=True)
class SlotOutcome:
    """What one VM did during one executed slot (for metrics/predictors)."""

    committed: ResourceVector
    primary_demand: ResourceVector
    opportunistic_demand: ResourceVector
    served_demand: ResourceVector
    unused: ResourceVector  # committed - primary demand, clipped at 0


class VirtualMachine:
    """One VM: capacity, placements, commitment and usage history."""

    def __init__(self, vm_id: int, capacity: ResourceVector, pm_id: int = 0) -> None:
        if not capacity.is_nonnegative() or not capacity.any_positive():
            raise ValueError("VM capacity must be non-negative and non-zero")
        self.vm_id = vm_id
        self.capacity = capacity
        self.pm_id = pm_id
        self.placements: list[Placement] = []
        # Incrementally maintained commitment total — committed() sits on
        # the scheduler's hottest path (feasibility scans over all VMs).
        self._committed = np.zeros(NUM_RESOURCES)
        #: Per-slot history of actual unused resource (n_slots, l) rows;
        #: this is the series the predictors train on.
        self._unused_history: list[np.ndarray] = []
        self._demand_history: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # commitment accounting
    # ------------------------------------------------------------------
    def committed(self) -> ResourceVector:
        """Total primary reservations currently held on this VM."""
        return ResourceVector(self._committed)

    def unallocated(self) -> ResourceVector:
        """Capacity not yet committed to any primary reservation."""
        return ResourceVector(
            np.maximum(self.capacity.as_array() - self._committed, 0.0)
        )

    def primary_demand(self) -> ResourceVector:
        """Current total demand of the primary placements."""
        return ResourceVector.sum(
            p.job.demand() for p in self.placements if not p.opportunistic
        )

    def opportunistic_demand(self) -> ResourceVector:
        """Current total demand of the opportunistic placements."""
        return ResourceVector.sum(
            p.job.demand() for p in self.placements if p.opportunistic
        )

    def actual_unused(self) -> ResourceVector:
        """Allocated-but-unused resource right now (``r − d``, Section II)."""
        return (self.committed() - self.primary_demand()).clip_nonnegative()

    def opportunistic_load(self) -> ResourceVector:
        """Demand already promised to opportunistic placements."""
        return self.opportunistic_demand()

    # ------------------------------------------------------------------
    # placement management
    # ------------------------------------------------------------------
    def can_reserve(self, amount: ResourceVector) -> bool:
        """Does ``amount`` fit in the unallocated capacity?"""
        return amount.fits_within(self.unallocated())

    def add_placement(self, placement: Placement) -> None:
        """Attach a placement, enforcing the reservation capacity check."""
        if placement.vm is not self:
            raise ValueError("placement bound to a different VM")
        if not placement.opportunistic and not self.can_reserve(placement.reserved):
            raise ValueError(
                f"VM {self.vm_id} cannot reserve {placement.reserved} "
                f"(unallocated {self.unallocated()})"
            )
        self.placements.append(placement)
        if not placement.opportunistic:
            self._committed += placement.reserved.as_array()

    def remove_completed(self) -> list[Job]:
        """Drop placements whose jobs completed; return those jobs."""
        done = [p.job for p in self.placements if p.job.state is JobState.COMPLETED]
        for p in self.placements:
            if p.job.state is JobState.COMPLETED and not p.opportunistic:
                self._committed -= p.reserved.as_array()
        np.maximum(self._committed, 0.0, out=self._committed)  # float drift
        self.placements = [
            p for p in self.placements if p.job.state is not JobState.COMPLETED
        ]
        return done

    # ------------------------------------------------------------------
    # slot execution
    # ------------------------------------------------------------------
    def execute_slot(self, slot: int) -> SlotOutcome:
        """Serve one slot: grant resources, advance jobs, record history.

        Primaries are served first, each up to ``min(demand, cap)``;
        whatever physical capacity remains is shared by opportunistic
        placements proportionally to their demand (they are squeezed
        first — they hold no commitment).
        """
        committed = self.committed()
        cap_arr = self.capacity.as_array()
        primaries = [p for p in self.placements if not p.opportunistic]
        opportunists = [p for p in self.placements if p.opportunistic]

        # --- primaries ---------------------------------------------------
        primary_demand = np.zeros(NUM_RESOURCES)
        primary_granted = np.zeros(NUM_RESOURCES)
        grants: list[tuple[Placement, ResourceVector]] = []
        for p in primaries:
            d = p.job.demand().as_array()
            cap = p.effective_cap().as_array()
            g = np.minimum(d, cap)
            primary_demand += d
            grants.append((p, ResourceVector(g)))
            primary_granted += g
        # Physical sanity: primaries cannot collectively exceed capacity.
        over = primary_granted > cap_arr + 1e-9
        if over.any():
            scale = np.ones(NUM_RESOURCES)
            scale[over] = cap_arr[over] / primary_granted[over]
            grants = [
                (p, ResourceVector(g.as_array() * scale)) for p, g in grants
            ]
            primary_granted = np.minimum(primary_granted, cap_arr)

        # --- opportunists -------------------------------------------------
        remaining = np.maximum(cap_arr - primary_granted, 0.0)
        opp_demand = np.zeros(NUM_RESOURCES)
        for p in opportunists:
            opp_demand += p.job.demand().as_array()
        if opportunists:
            scale = np.ones(NUM_RESOURCES)
            tight = opp_demand > remaining + 1e-12
            scale[tight] = np.where(
                opp_demand[tight] > 0, remaining[tight] / opp_demand[tight], 0.0
            )
            for p in opportunists:
                d = p.job.demand().as_array()
                cap = p.effective_cap().as_array()
                g = np.minimum(d * scale, cap)
                grants.append((p, ResourceVector(g)))

        # --- advance ------------------------------------------------------
        served = np.zeros(NUM_RESOURCES)
        for p, granted in grants:
            rate = p.job.compute_rate(granted)
            served += np.minimum(granted.as_array(), p.job.demand().as_array())
            p.job.advance(rate, slot)

        unused = (committed - ResourceVector(primary_demand)).clip_nonnegative()
        self._unused_history.append(unused.as_array().copy())
        self._demand_history.append(primary_demand + opp_demand)
        return SlotOutcome(
            committed=committed,
            primary_demand=ResourceVector(primary_demand),
            opportunistic_demand=ResourceVector(opp_demand),
            served_demand=ResourceVector(served),
            unused=unused,
        )

    # ------------------------------------------------------------------
    # histories (predictor inputs)
    # ------------------------------------------------------------------
    def unused_history(self, last: int | None = None) -> np.ndarray:
        """Per-slot actual unused resource, ``(n, l)`` array."""
        hist = self._unused_history[-last:] if last else self._unused_history
        if not hist:
            return np.zeros((0, NUM_RESOURCES))
        return np.asarray(hist)

    def demand_history(self, last: int | None = None) -> np.ndarray:
        """Per-slot total demand served on this VM, ``(n, l)`` array."""
        hist = self._demand_history[-last:] if last else self._demand_history
        if not hist:
            return np.zeros((0, NUM_RESOURCES))
        return np.asarray(hist)

    def __repr__(self) -> str:
        return (
            f"VirtualMachine(id={self.vm_id}, capacity={self.capacity}, "
            f"jobs={len(self.placements)})"
        )


class PhysicalMachine:
    """A server hosting VMs (bookkeeping only; contention is per-VM).

    The evaluation simulates each cluster node as a PM carrying VMs
    (Section IV's "we simulated a node as a PM").  VM capacities must fit
    within the PM.
    """

    def __init__(self, pm_id: int, capacity: ResourceVector) -> None:
        self.pm_id = pm_id
        self.capacity = capacity
        self.vms: list[VirtualMachine] = []

    def add_vm(self, vm: VirtualMachine) -> None:
        """Host a VM, enforcing the PM capacity envelope."""
        total = ResourceVector.sum(v.capacity for v in self.vms) + vm.capacity
        if not total.fits_within(self.capacity):
            raise ValueError(
                f"PM {self.pm_id} capacity {self.capacity} exceeded by VM set {total}"
            )
        vm.pm_id = self.pm_id
        self.vms.append(vm)

    def free_capacity(self) -> ResourceVector:
        """PM capacity not yet carved into VMs."""
        return (
            self.capacity - ResourceVector.sum(v.capacity for v in self.vms)
        ).clip_nonnegative()

    def __repr__(self) -> str:
        return f"PhysicalMachine(id={self.pm_id}, vms={len(self.vms)})"
