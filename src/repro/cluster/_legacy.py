"""Pre-vectorization reference implementations (benchmark + test oracle).

``legacy_execute_slot`` is the per-placement Python-loop slot execution
that :meth:`repro.cluster.machine.VirtualMachine.execute_slot` replaced,
kept verbatim so that

* the property tests can check the vectorized path against the original
  semantics on randomized placements, and
* ``benchmarks/bench_runtime.py`` can measure the pre-optimization
  baseline live on the current machine instead of trusting a recorded
  number.

``legacy_max_vm_capacity`` likewise rebuilds the elementwise max VM
capacity from scratch on every call, the way ``ClusterSimulator._admit``
did before the simulator memoized it.

Do not use these in production paths; they are intentionally slow.
"""

from __future__ import annotations

import numpy as np

from .machine import Placement, SlotOutcome, VirtualMachine
from .resources import NUM_RESOURCES, ResourceVector

__all__ = [
    "legacy_execute_slot",
    "legacy_max_vm_capacity",
    "legacy_fits_within",
    "legacy_is_nonnegative",
    "legacy_any_positive",
    "legacy_job_demand",
    "legacy_committed",
    "legacy_unallocated",
    "legacy_burst_pad",
    "legacy_error_pad",
]


def legacy_execute_slot(vm: VirtualMachine, slot: int) -> SlotOutcome:
    """The original per-placement ``execute_slot`` body, unvectorized."""
    committed = ResourceVector(vm._committed)
    cap_arr = vm.capacity.as_array()
    primaries = [p for p in vm.placements if not p.opportunistic]
    opportunists = [p for p in vm.placements if p.opportunistic]

    # --- primaries ---------------------------------------------------
    primary_demand = np.zeros(NUM_RESOURCES)
    primary_granted = np.zeros(NUM_RESOURCES)
    grants: list[tuple[Placement, ResourceVector]] = []
    for p in primaries:
        d = p.job.record.usage_at(
            min(int(p.job.progress), p.job.record.n_samples - 1)
        ).as_array()
        cap = p.effective_cap().as_array()
        g = np.minimum(d, cap)
        primary_demand += d
        grants.append((p, ResourceVector(g)))
        primary_granted += g
    # Physical sanity: primaries cannot collectively exceed capacity.
    over = primary_granted > cap_arr + 1e-9
    if over.any():
        scale = np.ones(NUM_RESOURCES)
        scale[over] = cap_arr[over] / primary_granted[over]
        grants = [(p, ResourceVector(g.as_array() * scale)) for p, g in grants]
        primary_granted = np.minimum(primary_granted, cap_arr)

    # --- opportunists -------------------------------------------------
    remaining = np.maximum(cap_arr - primary_granted, 0.0)
    opp_demand = np.zeros(NUM_RESOURCES)
    for p in opportunists:
        opp_demand += p.job.demand().as_array()
    if opportunists:
        scale = np.ones(NUM_RESOURCES)
        tight = opp_demand > remaining + 1e-12
        scale[tight] = np.where(
            opp_demand[tight] > 0, remaining[tight] / opp_demand[tight], 0.0
        )
        for p in opportunists:
            d = p.job.demand().as_array()
            cap = p.effective_cap().as_array()
            g = np.minimum(d * scale, cap)
            grants.append((p, ResourceVector(g)))

    # --- advance ------------------------------------------------------
    served = np.zeros(NUM_RESOURCES)
    for p, granted in grants:
        rate = p.job.compute_rate(granted)
        served += np.minimum(granted.as_array(), p.job.demand().as_array())
        p.job.advance(rate, slot)

    unused = (committed - ResourceVector(primary_demand)).clip_nonnegative()
    vm._unused_history.append(unused.as_array().copy())
    vm._demand_history.append(primary_demand + opp_demand)
    return SlotOutcome(
        committed=committed,
        primary_demand=ResourceVector(primary_demand),
        opportunistic_demand=ResourceVector(opp_demand),
        served_demand=ResourceVector(served),
        unused=unused,
    )


def legacy_max_vm_capacity(vms) -> ResourceVector:
    """Uncached elementwise max capacity across VMs (per-arrival cost)."""
    return ResourceVector.elementwise_max(vm.capacity for vm in vms)


# ----------------------------------------------------------------------
# Pre-optimization bodies of the small hot-path methods, verbatim.
# ``repro.experiments.bench.legacy_mode`` patches these in so the
# baseline measurement reflects the original per-call numpy overhead.
# ----------------------------------------------------------------------


def legacy_fits_within(self, capacity, *, atol: float = 1e-9) -> bool:
    """Original numpy-reduction ``ResourceVector.fits_within``."""
    return bool(np.all(self._v <= capacity._v + atol))


def legacy_is_nonnegative(self, *, atol: float = 1e-9) -> bool:
    """Original numpy-reduction ``ResourceVector.is_nonnegative``."""
    return bool(np.all(self._v >= -atol))


def legacy_any_positive(self, *, atol: float = 1e-9) -> bool:
    """Original numpy-reduction ``ResourceVector.any_positive``."""
    return bool(np.any(self._v > atol))


def legacy_job_demand(self) -> ResourceVector:
    """Original uncached ``Job.demand`` (fresh vector every call)."""
    idx = min(int(self.progress), self.record.n_samples - 1)
    return self.record.usage_at(idx)


def legacy_committed(self) -> ResourceVector:
    """Original unmemoized ``VirtualMachine.committed``."""
    return ResourceVector(self._committed)


def legacy_unallocated(self) -> ResourceVector:
    """Original unmemoized ``VirtualMachine.unallocated``."""
    return ResourceVector(
        np.maximum(self.capacity.as_array() - self._committed, 0.0)
    )


def legacy_burst_pad(self) -> float:
    """Original ``AdaptivePadding.burst_pad`` (numpy percentile)."""
    if len(self._usage) < 2:
        return 0.0
    u = np.asarray(self._usage)
    return float(max(np.percentile(u, self.percentile) - u.mean(), 0.0))


def legacy_error_pad(self) -> float:
    """Original ``AdaptivePadding.error_pad`` (numpy percentile)."""
    if not self._under_errors:
        return 0.0
    return float(np.percentile(np.asarray(self._under_errors), self.percentile))
