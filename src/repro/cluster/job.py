"""Runtime job model: demand, progress under contention, response time.

A :class:`Job` wraps one short-lived task from the trace while it lives in
the simulator.  Its per-slot *demand* comes from the trace's usage series;
the amount it actually *receives* in a slot depends on the scheduler's
allocation and on physical contention at its VM.  Receiving less than the
demand slows the job down proportionally, stretching its response time —
which is how over-aggressive reallocation of "unused" resources turns
into SLO violations (Section IV: "jobs' response time is affected by the
unavailability of resource for job processing" [43]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

import numpy as np

from .resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover - avoids a trace<->cluster import cycle
    from ..trace.records import TaskRecord

__all__ = ["Job", "JobState"]


class JobState(Enum):
    """Lifecycle of a job inside the simulator."""

    PENDING = "pending"      # submitted, waiting for placement
    RUNNING = "running"      # placed on a VM, making progress
    COMPLETED = "completed"  # all work done
    FAILED = "failed"        # gave up after faults (retries/deadline exhausted)


@dataclass
class Job:
    """One job instance in flight.

    Attributes
    ----------
    record:
        The originating trace record (supplies demand and request).
    submit_slot:
        Slot at which the job entered the system.
    nominal_slots:
        Number of slots the job takes at full speed.
    state, start_slot, completion_slot:
        Lifecycle bookkeeping.
    progress:
        Work completed so far, in units of nominal slots; the job
        completes when ``progress >= nominal_slots``.
    opportunistic:
        True when the job was placed on *predicted unused* resources of
        other jobs' allocations (the weaker-SLO class of Section I's
        opportunistic provisioning); such jobs absorb contention first.
    """

    record: TaskRecord
    submit_slot: int
    nominal_slots: int = field(init=False)
    state: JobState = field(default=JobState.PENDING)
    start_slot: Optional[int] = None
    completion_slot: Optional[int] = None
    progress: float = 0.0
    opportunistic: bool = False
    #: Transient failures this job has retried from (fault injection).
    retries: int = 0
    #: Times this job was evicted by a VM crash (fault injection).
    evictions: int = 0
    #: Slot of the job's first fault (eviction or transient failure);
    #: the retry policy's give-up deadline is measured from here.
    first_fault_slot: Optional[int] = None
    #: Per-slot rates actually achieved while running (for diagnostics).
    rate_history: list[float] = field(default_factory=list)
    #: Per-slot demand vectors observed while running — the utilization
    #: history the predictors consume.
    demand_log: list[np.ndarray] = field(default_factory=list)
    #: Memoized ``(sample_index, demand vector)`` pair — demand is read
    #: several times per slot (grant computation, rate computation,
    #: scheduler scans) but only changes when progress crosses a sample.
    _demand_cache: Optional[tuple[int, ResourceVector]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.nominal_slots = max(
            1, int(np.ceil(self.record.duration_s / self.record.sample_period_s))
        )

    # ------------------------------------------------------------------
    @property
    def job_id(self) -> int:
        """The originating trace record's task id."""
        return self.record.task_id

    @property
    def requested(self) -> ResourceVector:
        """The job's allocation request ``r_i`` (from the trace)."""
        return self.record.requested

    def demand(self) -> ResourceVector:
        """Current-slot demand ``d_i``, indexed by work progress.

        Demand follows the trace's usage series at the position the job
        has *worked up to*, so a slowed job replays its demand curve more
        slowly rather than skipping ahead.
        """
        idx = min(int(self.progress), self.record.n_samples - 1)
        cache = self._demand_cache
        if cache is not None and cache[0] == idx:
            return cache[1]
        # The usage row is an immutable view of the record's read-only
        # series, so it can be adopted without a defensive copy.
        vec = ResourceVector._wrap(self.record.usage[idx])
        self._demand_cache = (idx, vec)
        return vec

    def demand_array(self) -> np.ndarray:
        """Raw read-only view of the current demand (hot-path variant)."""
        return self.demand().as_array()

    # ------------------------------------------------------------------
    def start(self, slot: int, *, opportunistic: bool) -> None:
        """Mark the job running (placement succeeded at ``slot``)."""
        if self.state is not JobState.PENDING:
            raise RuntimeError(f"job {self.job_id} cannot start from {self.state}")
        self.state = JobState.RUNNING
        self.start_slot = slot
        self.opportunistic = opportunistic

    def advance(self, rate: float, slot: int) -> None:
        """Progress the job by one slot at the given rate ``in [0, 1]``.

        ``rate = 1`` is full speed; ``rate = 0.5`` means the slot only
        completed half a slot's worth of work.
        """
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"job {self.job_id} is not running")
        rate = min(max(float(rate), 0.0), 1.0)
        self.rate_history.append(rate)
        self.demand_log.append(self.demand_array().copy())
        self.progress += rate
        if self.progress >= self.nominal_slots - 1e-9:
            self.progress = float(self.nominal_slots)
            self.state = JobState.COMPLETED
            self.completion_slot = slot

    def requeue(self, slot: int) -> None:
        """Return a running job to the queue after a fault, losing progress.

        Crash evictions and transient failures both pass through here:
        the in-memory state of a short job does not survive its VM, so
        the work restarts from zero.  The demand/rate logs are kept —
        they are real observations the monitoring layer already made.
        """
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"job {self.job_id} cannot be requeued from {self.state}")
        self.state = JobState.PENDING
        self.start_slot = None
        self.opportunistic = False
        self.progress = 0.0
        self._demand_cache = None
        if self.first_fault_slot is None:
            self.first_fault_slot = slot

    def fail_permanently(self, slot: int) -> None:
        """Give up on the job (retry budget or deadline exhausted)."""
        if self.state in (JobState.COMPLETED, JobState.FAILED):
            raise RuntimeError(f"job {self.job_id} cannot fail from {self.state}")
        self.state = JobState.FAILED
        self.completion_slot = None
        if self.first_fault_slot is None:
            self.first_fault_slot = slot

    # ------------------------------------------------------------------
    def utilization_history(self) -> np.ndarray:
        """Per-slot utilization of the request, ``(n, l)`` in [0, 1].

        Resources with a zero request report zero utilization (nothing
        was allocated, so nothing can be "used" of it).
        """
        if not self.demand_log:
            return np.zeros((0, len(self.requested)))
        demand = np.asarray(self.demand_log)
        req = self.requested.as_array()
        out = np.zeros_like(demand)
        nz = req > 0
        out[:, nz] = demand[:, nz] / req[nz]
        return np.clip(out, 0.0, 1.0)

    def response_slots(self) -> Optional[int]:
        """Response time in slots (completion − submission + 1), if done."""
        if self.completion_slot is None:
            return None
        return self.completion_slot - self.submit_slot + 1

    def compute_rate(self, granted: ResourceVector) -> float:
        """Execution rate given a granted resource vector.

        The rate is the *minimum* over resource types of
        ``granted_k / demand_k`` (capped at 1): a job starved on any one
        resource it needs runs at that resource's fraction.  Resources
        the job does not currently demand impose no constraint.
        """
        d = self.demand().as_array()
        g = granted.as_array()
        needed = d > 1e-12
        if not needed.any():
            return 1.0
        ratios = g[needed] / d[needed]
        return float(np.clip(ratios.min(), 0.0, 1.0))

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, state={self.state.value}, "
            f"progress={self.progress:.2f}/{self.nominal_slots}, "
            f"opportunistic={self.opportunistic})"
        )
