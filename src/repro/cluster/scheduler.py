"""Scheduler interface and shared instrumentation.

Every provisioning scheme (CORP and the three baselines) implements
:class:`Scheduler`.  The simulator calls, per slot::

    on_slot_start(slot)          # periodic prediction work
    place_jobs(pending, slot)    # assign pending jobs to VMs
    ... VMs execute the slot ...
    on_slot_end(slot, outcomes)  # observe actuals, track errors

Instrumentation:

* :class:`LatencyMeter` — wall-clock of the decision path plus a modeled
  communication charge per remote operation (``comm_latency_s`` from the
  cluster profile).  This regenerates the overhead figures (Fig. 10/14).
* :class:`PredictionLog` — (predicted, actual) pairs of unused-resource
  forecasts, from which Fig. 6's error-rate metric is computed: the
  fraction of predictions whose error falls *outside* ``[0, ε)``.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .job import Job
from .machine import SlotOutcome, VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..trace.records import Trace
    from .simulator import ClusterSimulator

__all__ = ["Scheduler", "LatencyMeter", "PredictionLog"]


@dataclass
class LatencyMeter:
    """Accumulates scheduler decision latency.

    ``compute_s`` is measured wall-clock time of the decision path;
    ``comm_s`` is the modeled network cost (operations × per-op RTT).
    The paper's overhead metric (Fig. 10/14) is their sum.
    """

    comm_latency_s: float = 0.0
    compute_s: float = 0.0
    comm_ops: int = 0

    @contextmanager
    def measure(self):
        """Time a block of decision-path work."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.compute_s += time.perf_counter() - start

    def charge_comm(self, n_ops: int = 1) -> None:
        """Charge ``n_ops`` remote operations to the modeled network cost."""
        if n_ops < 0:
            raise ValueError("n_ops must be non-negative")
        self.comm_ops += n_ops

    @property
    def comm_s(self) -> float:
        """Modeled network time: operations × per-op RTT."""
        return self.comm_ops * self.comm_latency_s

    @property
    def total_s(self) -> float:
        """The overhead metric of Fig. 10/14: compute + modeled comm."""
        return self.compute_s + self.comm_s


@dataclass
class PredictionLog:
    """Per-window unused-resource prediction errors (Eq. 20 samples).

    Errors are ``actual − predicted`` of the (CPU-weighted) unused
    resource: positive means the predictor was conservative (predicted
    less unused than existed), negative means it over-promised.
    """

    predicted: list[float] = field(default_factory=list)
    actual: list[float] = field(default_factory=list)

    def add(self, predicted: float, actual: float) -> None:
        """Record one (forecast, realized) pair."""
        self.predicted.append(float(predicted))
        self.actual.append(float(actual))

    def __len__(self) -> int:
        return len(self.predicted)

    def errors(self) -> np.ndarray:
        """``actual − predicted`` samples (Eq. 20 direction)."""
        return np.asarray(self.actual) - np.asarray(self.predicted)

    def error_rate(self, tolerance: float) -> float:
        """Fig. 6 metric: fraction of predictions NOT within ``[0, ε)``.

        A prediction is *correct* when its error lies in ``[0, ε)`` —
        conservative and close.  The error rate is the complement.

        An empty log has no defined error rate and returns ``NaN``: a
        predictor that never predicted must not score as *perfect*
        (``0.0``) in the Fig. 6 comparison.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if not self.predicted:
            return float("nan")
        err = self.errors()
        correct = np.logical_and(err >= 0.0, err < tolerance)
        return float(1.0 - correct.mean())

    def rmse(self) -> float:
        """Root-mean-square of the δ samples."""
        if not self.predicted:
            return 0.0
        return float(np.sqrt(np.mean(self.errors() ** 2)))


class Scheduler(ABC):
    """Base class for all provisioning schemes."""

    #: Human-readable scheme name ("CORP", "RCCR", ...).
    name: str = "base"

    def __init__(self) -> None:
        self.latency = LatencyMeter()
        self.prediction_log = PredictionLog()
        self._sim: "ClusterSimulator | None" = None

    # ------------------------------------------------------------------
    def bind(self, sim: "ClusterSimulator") -> None:
        """Attach to a simulator (called once before the run)."""
        self._sim = sim
        self.latency.comm_latency_s = sim.profile.comm_latency_s

    @property
    def sim(self) -> "ClusterSimulator":
        """The bound simulator (raises if unbound)."""
        if self._sim is None:
            raise RuntimeError(f"{self.name} scheduler is not bound to a simulator")
        return self._sim

    @property
    def vms(self) -> Sequence[VirtualMachine]:
        """The bound simulator's VMs."""
        return self.sim.vms

    # ------------------------------------------------------------------
    def prepare(self, history: "Trace") -> None:
        """Offline phase: fit predictors on historical trace data.

        Runs before the simulation and is *not* charged to the
        allocation-latency meter — the paper's overhead figure measures
        the latency of allocating resources to jobs, with model training
        done ahead of time on the historical Google-trace data.
        """

    def on_slot_start(self, slot: int) -> None:
        """Hook at the top of each slot (periodic prediction work)."""

    @abstractmethod
    def place_jobs(self, pending: Sequence[Job], slot: int) -> list[Job]:
        """Try to place pending jobs; return the ones successfully placed.

        Implementations mutate VMs via ``Placement`` objects and must
        call ``job.start(slot, opportunistic=...)`` for each placed job.
        Jobs not returned stay queued and are retried next slot.
        """

    def on_slot_end(self, slot: int, outcomes: dict[int, SlotOutcome]) -> None:
        """Hook after the slot executed (observe actuals, update errors)."""
