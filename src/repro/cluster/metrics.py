"""Utilization and wastage metrics (paper Eq. 1-4).

Per-resource utilization at slot ``t`` (Eq. 1):

.. math:: U_{j,t} = \\frac{\\sum_i d_{ij,t}}{\\sum_i r_{ij,t}}

and its weighted overall form (Eq. 2); wastage ratios are the
complements (Eq. 3-4).

Commitment semantics
--------------------
The denominator sums the resources *committed* from VM capacity: every
primary reservation counts once, and opportunistic placements count
zero because they sit inside another job's already-counted allocation.
This de-duplication is the only reading of Eq. 1 under which
opportunistic reuse raises utilization — the paper's central claim
(see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .resources import DEFAULT_WEIGHTS, NUM_RESOURCES, ResourceKind, ResourceVector

__all__ = [
    "utilization",
    "overall_utilization",
    "wastage",
    "overall_wastage",
    "MetricsRecorder",
]


def _ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Elementwise ``num/den`` with zero denominators yielding zero."""
    out = np.zeros_like(num, dtype=np.float64)
    nz = den > 1e-12
    out[nz] = num[nz] / den[nz]
    return out


def utilization(demand: ResourceVector, committed: ResourceVector) -> np.ndarray:
    """Per-resource utilization ``U_{j,t}`` (Eq. 1), clipped to [0, 1].

    Values can transiently exceed 1 when opportunistic demand rides on
    uncommitted headroom; the clip keeps the metric a true utilization.
    """
    return np.clip(_ratio(demand.as_array(), committed.as_array()), 0.0, 1.0)


def overall_utilization(
    demand: ResourceVector,
    committed: ResourceVector,
    weights: np.ndarray = DEFAULT_WEIGHTS,
) -> float:
    """Weighted overall utilization ``U_{a,t}`` (Eq. 2)."""
    w = np.asarray(weights, dtype=np.float64)
    num = float(demand.as_array() @ w)
    den = float(committed.as_array() @ w)
    if den <= 1e-12:
        return 0.0
    return float(np.clip(num / den, 0.0, 1.0))


def wastage(demand: ResourceVector, committed: ResourceVector) -> np.ndarray:
    """Per-resource wastage ratio ``w_{j,t}`` (Eq. 3)."""
    d = demand.as_array()
    r = committed.as_array()
    return np.clip(_ratio(np.maximum(r - d, 0.0), r), 0.0, 1.0)


def overall_wastage(
    demand: ResourceVector,
    committed: ResourceVector,
    weights: np.ndarray = DEFAULT_WEIGHTS,
) -> float:
    """Weighted overall wastage ratio ``w_{a,t}`` (Eq. 4)."""
    w = np.asarray(weights, dtype=np.float64)
    num = float(np.maximum(committed.as_array() - demand.as_array(), 0.0) @ w)
    den = float(committed.as_array() @ w)
    if den <= 1e-12:
        return 0.0
    return float(np.clip(num / den, 0.0, 1.0))


@dataclass
class MetricsRecorder:
    """Accumulates per-slot cluster-wide metrics over a run.

    One ``record`` call per executed slot with the cluster's total served
    demand and total commitment; summary properties average over the
    slots in which any resource was committed (idle warm-up and drain
    slots carry no information about allocation quality).
    """

    weights: np.ndarray = field(default_factory=lambda: DEFAULT_WEIGHTS.copy())
    _demand: list[np.ndarray] = field(default_factory=list)
    _committed: list[np.ndarray] = field(default_factory=list)

    def record(self, demand: ResourceVector, committed: ResourceVector) -> None:
        """Record one slot's cluster-wide served demand and commitment."""
        self._demand.append(demand.as_array().copy())
        self._committed.append(committed.as_array().copy())

    def record_arrays(self, demand: np.ndarray, committed: np.ndarray) -> None:
        """Hot-path variant of :meth:`record` that *adopts* the arrays.

        The caller hands over ownership of freshly computed buffers, so
        no defensive copy is taken.
        """
        self._demand.append(demand)
        self._committed.append(committed)

    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        """Number of recorded slots."""
        return len(self._demand)

    def _active_mask(self) -> np.ndarray:
        committed = np.asarray(self._committed)
        if committed.size == 0:
            return np.zeros(0, dtype=bool)
        return (committed @ self.weights) > 1e-12

    def per_slot_utilization(self) -> np.ndarray:
        """``(n_slots, l)`` per-resource utilization series."""
        if not self._demand:
            return np.zeros((0, NUM_RESOURCES))
        d = np.asarray(self._demand)
        r = np.asarray(self._committed)
        return np.clip(_ratio(d, r), 0.0, 1.0)

    def per_slot_overall(self) -> np.ndarray:
        """``(n_slots,)`` weighted overall utilization series (Eq. 2)."""
        if not self._demand:
            return np.zeros(0)
        d = np.asarray(self._demand) @ self.weights
        r = np.asarray(self._committed) @ self.weights
        return np.clip(_ratio(d, r), 0.0, 1.0)

    # ------------------------------------------------------------------
    def mean_utilization(self, kind: ResourceKind) -> float:
        """Time-average utilization of one resource over active slots."""
        mask = self._active_mask()
        if not mask.any():
            return 0.0
        series = self.per_slot_utilization()[mask, int(kind)]
        return float(series.mean())

    def mean_overall_utilization(self) -> float:
        """Time-average of Eq. 2 over active slots."""
        mask = self._active_mask()
        if not mask.any():
            return 0.0
        return float(self.per_slot_overall()[mask].mean())

    def mean_overall_wastage(self) -> float:
        """Time-average of Eq. 4 over active slots (= 1 − utilization)."""
        mask = self._active_mask()
        if not mask.any():
            return 0.0
        return float(1.0 - self.per_slot_overall()[mask].mean())

    def utilization_by_resource(self) -> dict[ResourceKind, float]:
        """Time-average utilization per resource type."""
        return {k: self.mean_utilization(k) for k in ResourceKind}
