"""Cluster profiles matching the paper's two testbeds (Section IV).

* **Palmetto** — Clemson's HPC cluster: 50 HP SL230 servers (dual
  E5-2665 → 16 cores, 64 GB RAM), 1 GB/s network, 720 GB disk each.
  The paper simulates "a node as a PM and a logic disk as a VM"; we carve
  each PM into equal VMs.
* **EC2** — 30 Amazon EC2 nodes (HP ProLiant ML110 G5-class: 2660 MIPS
  ≈ 2 cores, 4 GB RAM), each node simulated as one VM, with a higher
  communication latency per scheduling operation (the cause of Fig. 14's
  latencies exceeding Fig. 10's).

The communication-latency model substitutes for real network RTTs: every
remote scheduler operation (placing an entity, polling a VM's usage)
charges ``comm_latency_s`` to the modeled allocation latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import PhysicalMachine, VirtualMachine
from .resources import ResourceVector

__all__ = ["ClusterProfile"]


@dataclass(frozen=True)
class ClusterProfile:
    """A testbed description the simulator can instantiate.

    Attributes
    ----------
    name:
        Profile label used in reports.
    n_pms:
        Number of physical machines (paper: 30-50, Table II).
    pm_capacity:
        Per-PM capacity (cores, GB RAM, GB disk).
    vms_per_pm:
        Equal-size VMs carved from each PM (total VMs 100-400, Table II).
    comm_latency_s:
        Modeled network round-trip charged per remote scheduler
        operation; EC2's is an order of magnitude above the cluster's.
    bandwidth_gbps:
        Node bandwidth (both testbeds: 1 GB/s) — recorded for
        completeness; the three modeled resource types are CPU/MEM/disk.
    """

    name: str
    n_pms: int
    pm_capacity: ResourceVector
    vms_per_pm: int
    comm_latency_s: float
    bandwidth_gbps: float = 1.0

    def __post_init__(self) -> None:
        if self.n_pms < 1:
            raise ValueError("n_pms must be >= 1")
        if self.vms_per_pm < 1:
            raise ValueError("vms_per_pm must be >= 1")
        if self.comm_latency_s < 0:
            raise ValueError("comm_latency_s must be >= 0")

    # ------------------------------------------------------------------
    @classmethod
    def palmetto(cls, n_pms: int = 50, vms_per_pm: int = 2) -> "ClusterProfile":
        """The real-cluster testbed (50 × HP SL230, Section IV-A)."""
        return cls(
            name="palmetto",
            n_pms=n_pms,
            pm_capacity=ResourceVector.of(cpu=16.0, mem=64.0, storage=720.0),
            vms_per_pm=vms_per_pm,
            comm_latency_s=0.0002,
        )

    @classmethod
    def ec2(cls, n_nodes: int = 30) -> "ClusterProfile":
        """The Amazon EC2 testbed (30 × ML110 G5-class, Section IV-B).

        Each node is simulated as one VM, as the paper does.
        """
        return cls(
            name="ec2",
            n_pms=n_nodes,
            pm_capacity=ResourceVector.of(cpu=8.0, mem=32.0, storage=720.0),
            vms_per_pm=1,
            comm_latency_s=0.002,
        )

    @classmethod
    def hyperscale(
        cls, n_pms: int = 1250, vms_per_pm: int = 8
    ) -> "ClusterProfile":
        """A 10k-VM datacenter testbed for the sharding layer.

        Defaults to 1250 dense PMs (64 cores / 256 GB / 4 TB, modern
        2-socket boxes) carved into 8 VMs each — 10,000 VMs, two orders
        of magnitude beyond the paper's testbeds.  Exercised by
        ``bench_runtime.py --scale`` together with streaming trace
        generation; pair it with ``ScaleConfig(shards=...)`` so the
        availability index is shard-partitioned rather than one 10k-row
        rebuild per slot.
        """
        return cls(
            name="hyperscale",
            n_pms=n_pms,
            pm_capacity=ResourceVector.of(cpu=64.0, mem=256.0, storage=4000.0),
            vms_per_pm=vms_per_pm,
            comm_latency_s=0.0001,
        )

    # ------------------------------------------------------------------
    @property
    def n_vms(self) -> int:
        """Total VM count (``n_pms × vms_per_pm``)."""
        return self.n_pms * self.vms_per_pm

    @property
    def vm_capacity(self) -> ResourceVector:
        """Capacity of each (equal) VM."""
        return self.pm_capacity / float(self.vms_per_pm)

    def build(self) -> tuple[list[PhysicalMachine], list[VirtualMachine]]:
        """Instantiate the PMs and VMs of this profile."""
        pms: list[PhysicalMachine] = []
        vms: list[VirtualMachine] = []
        vm_id = 0
        for pm_id in range(self.n_pms):
            pm = PhysicalMachine(pm_id, self.pm_capacity)
            for _ in range(self.vms_per_pm):
                vm = VirtualMachine(vm_id, self.vm_capacity, pm_id=pm_id)
                pm.add_vm(vm)
                vms.append(vm)
                vm_id += 1
            pms.append(pm)
        return pms, vms
