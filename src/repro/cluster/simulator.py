"""Discrete-time-slot cluster simulator.

Hosts the slot loop of Section II: jobs arrive per slot, the scheduler
places them, VMs execute the slot (granting resources and advancing
jobs), and the recorders accumulate utilization (Eq. 1-4), SLO outcomes
and allocation latency.

Since v1.5 the loop itself lives in the event-driven kernel
(:mod:`repro.service.kernel`); :meth:`ClusterSimulator.run` is a thin
batch driver that preloads the workload's arrivals as submission
events and steps the kernel to completion — byte-identical to the old
in-place loop (the golden-trace suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .job import Job

if TYPE_CHECKING:  # pragma: no cover - avoids a trace<->cluster import cycle
    from ..faults.injector import FaultInjector
    from ..faults.plan import FaultPlan
    from ..trace.records import Trace
from .machine import PhysicalMachine, VirtualMachine
from .metrics import MetricsRecorder
from .profiles import ClusterProfile
from .resources import ResourceVector
from .scheduler import Scheduler
from .shards import ScaleConfig
from .slo import SloSpec, SloTracker

__all__ = ["SimulationConfig", "SimulationResult", "ClusterSimulator"]


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level knobs.

    Attributes
    ----------
    slot_duration_s:
        Seconds per slot (paper: 10 s).
    max_slots:
        Hard stop; a run normally ends when every job completed.
    slo:
        The response-time SLO specification.
    drain:
        Keep simulating after the last arrival until all jobs finish.
    scale:
        Hyperscale knobs (availability-index sharding, streaming chunk
        size); the default single-shard config reproduces pre-sharding
        output byte-identically.
    """

    slot_duration_s: float = 10.0
    max_slots: int = 20_000
    slo: SloSpec = field(default_factory=SloSpec)
    drain: bool = True
    scale: ScaleConfig = field(default_factory=ScaleConfig)


@dataclass
class SimulationResult:
    """Everything a run produced, ready for the experiment harness."""

    scheduler_name: str
    metrics: MetricsRecorder
    slo: SloTracker
    n_slots: int
    n_submitted: int
    n_completed: int
    n_rejected: int
    allocation_latency_s: float
    prediction_error_rate: Optional[float]
    jobs: list[Job]
    #: Jobs that permanently failed under fault injection (gave up).
    n_failed: int = 0
    #: Resilience metrics from the fault injector; ``None`` when the run
    #: had no fault plan, so fault-free summaries stay byte-identical to
    #: pre-fault-layer output.
    resilience: Optional[dict[str, float]] = None
    #: True when the run stopped at ``max_slots`` with work still ahead
    #: (queued/running/backlogged jobs or arrivals never submitted) —
    #: such summaries cover an incomplete run and must not be read as a
    #: completed one.
    truncated: bool = False
    #: Scenario-family metrics (``pipeline_stall_slots``,
    #: ``flash_crowd_p99_wait``, ...) attached by the workload drivers;
    #: ``None`` for plain runs so their summaries stay byte-identical.
    extra_metrics: Optional[dict[str, float]] = None

    @property
    def all_done(self) -> bool:
        """Every submitted job completed, was rejected, or gave up."""
        return (
            self.n_completed + self.n_rejected + self.n_failed == self.n_submitted
        )

    def summary(self) -> dict[str, float]:
        """Flat scalar summary used by the report tables."""
        out: dict[str, float] = {
            "overall_utilization": self.metrics.mean_overall_utilization(),
            "overall_wastage": self.metrics.mean_overall_wastage(),
            "slo_violation_rate": self.slo.violation_rate,
            "allocation_latency_s": self.allocation_latency_s,
            "n_slots": float(self.n_slots),
            "n_completed": float(self.n_completed),
        }
        for kind, value in self.metrics.utilization_by_resource().items():
            out[f"utilization_{kind.label.lower()}"] = value
        if self.prediction_error_rate is not None:
            out["prediction_error_rate"] = self.prediction_error_rate
        if self.resilience is not None:
            out["n_failed"] = float(self.n_failed)
            out.update(self.resilience)
        # Only surfaced when set, so completed-run summaries (and the
        # golden traces) stay byte-identical to pre-v1.5 output.
        if self.truncated:
            out["truncated"] = 1.0
        if self.extra_metrics:
            out.update(self.extra_metrics)
        return out


class ClusterSimulator:
    """Instantiates a profile and replays a workload under a scheduler."""

    def __init__(
        self,
        profile: ClusterProfile,
        scheduler: Scheduler,
        config: SimulationConfig | None = None,
        *,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.profile = profile
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self.pms: list[PhysicalMachine]
        self.vms: list[VirtualMachine]
        self.pms, self.vms = profile.build()
        self.metrics = MetricsRecorder()
        self.slo_tracker = SloTracker(spec=self.config.slo)
        self.pending: list[Job] = []
        self.running: list[Job] = []
        self.rejected: list[Job] = []
        self.completed: list[Job] = []
        self.failed: list[Job] = []
        self.current_slot: int = 0
        # Capacity-cache epoch: bumped by VMs (via the observer hook)
        # whenever any effective capacity changes, so ``max_vm_capacity``
        # revalidates in O(1) instead of scanning 10k+ capacity versions
        # per admitted job.
        self._capacity_epoch: int = 0
        for vm in self.vms:
            vm._capacity_observer = self
        self._max_capacity_cache: tuple[int, ResourceVector] | None = None
        # An empty plan builds no injector: the fault layer then adds
        # zero work (and zero behavioural difference) to the slot loop.
        self.faults: "FaultInjector | None" = None
        if fault_plan:
            from ..faults.injector import FaultInjector

            self.faults = FaultInjector(fault_plan)
        scheduler.bind(self)

    @property
    def predictor_available(self) -> bool:
        """False while a fault plan has the prediction service down."""
        return self.faults is None or self.faults.predictor_available

    # ------------------------------------------------------------------
    def notice_capacity_change(self) -> None:
        """Observer hook VMs call when their effective capacity changes."""
        self._capacity_epoch += 1

    def max_vm_capacity(self) -> ResourceVector:
        """Elementwise max capacity across VMs (the ``C'`` of Eq. 22).

        Memoized: the simulator consults it for every arriving job (and
        CORP for every selection) but capacity only changes when a fault
        revokes/restores it, so the cache is keyed on a capacity epoch
        the VMs bump through the observer hook — an O(1) check where the
        previous per-VM version scan cost O(n_vms) per admitted job.
        """
        cached = self._max_capacity_cache
        if cached is not None and cached[0] == self._capacity_epoch:
            return cached[1]
        value = ResourceVector.elementwise_max(vm.capacity for vm in self.vms)
        self._max_capacity_cache = (self._capacity_epoch, value)
        return value

    def _admit(self, job: Job) -> bool:
        """Reject jobs no VM could ever host (prevents starved queues)."""
        biggest = self.max_vm_capacity()
        return job.requested.fits_within(biggest)

    # ------------------------------------------------------------------
    def run(self, trace: Trace, *, history: Trace | None = None) -> SimulationResult:
        """Replay ``trace`` and return the run's metrics.

        A thin batch driver over the event kernel: the workload's
        arrivals are preloaded as ``job-submitted`` events and the
        kernel is stepped until the run finishes.  Summaries are
        byte-identical to the pre-kernel in-place slot loop.

        Parameters
        ----------
        trace:
            The evaluation workload (already resampled to slot period).
        history:
            Historical trace for the scheduler's offline phase (model
            training).  Defaults to ``trace`` itself — the paper trains
            on "the historical resource usage data from the Google
            trace", i.e. the same distribution the evaluation replays.
        """
        from ..service.kernel import SchedulerKernel
        from ..trace.workload import build_workload

        workload = build_workload(trace, self.config.slot_duration_s)
        self.scheduler.prepare(history if history is not None else trace)
        kernel = SchedulerKernel.from_workload(self, workload)
        kernel.run_until_blocked()
        return kernel.result()
