"""Discrete-time-slot cluster simulator.

Drives the slot loop of Section II: jobs arrive per slot, the scheduler
places them, VMs execute the slot (granting resources and advancing
jobs), and the recorders accumulate utilization (Eq. 1-4), SLO outcomes
and allocation latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..check import CHECK
from ..obs import OBS
from .job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - avoids a trace<->cluster import cycle
    from ..faults.injector import FaultInjector
    from ..faults.plan import FaultPlan
    from ..trace.records import Trace
from .machine import PhysicalMachine, SlotOutcome, VirtualMachine
from .metrics import MetricsRecorder
from .profiles import ClusterProfile
from .resources import NUM_RESOURCES, ResourceVector
from .scheduler import Scheduler
from .slo import SloSpec, SloTracker

__all__ = ["SimulationConfig", "SimulationResult", "ClusterSimulator"]


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level knobs.

    Attributes
    ----------
    slot_duration_s:
        Seconds per slot (paper: 10 s).
    max_slots:
        Hard stop; a run normally ends when every job completed.
    slo:
        The response-time SLO specification.
    drain:
        Keep simulating after the last arrival until all jobs finish.
    """

    slot_duration_s: float = 10.0
    max_slots: int = 20_000
    slo: SloSpec = field(default_factory=SloSpec)
    drain: bool = True


@dataclass
class SimulationResult:
    """Everything a run produced, ready for the experiment harness."""

    scheduler_name: str
    metrics: MetricsRecorder
    slo: SloTracker
    n_slots: int
    n_submitted: int
    n_completed: int
    n_rejected: int
    allocation_latency_s: float
    prediction_error_rate: Optional[float]
    jobs: list[Job]
    #: Jobs that permanently failed under fault injection (gave up).
    n_failed: int = 0
    #: Resilience metrics from the fault injector; ``None`` when the run
    #: had no fault plan, so fault-free summaries stay byte-identical to
    #: pre-fault-layer output.
    resilience: Optional[dict[str, float]] = None

    @property
    def all_done(self) -> bool:
        """Every submitted job completed, was rejected, or gave up."""
        return (
            self.n_completed + self.n_rejected + self.n_failed == self.n_submitted
        )

    def summary(self) -> dict[str, float]:
        """Flat scalar summary used by the report tables."""
        out: dict[str, float] = {
            "overall_utilization": self.metrics.mean_overall_utilization(),
            "overall_wastage": self.metrics.mean_overall_wastage(),
            "slo_violation_rate": self.slo.violation_rate,
            "allocation_latency_s": self.allocation_latency_s,
            "n_slots": float(self.n_slots),
            "n_completed": float(self.n_completed),
        }
        for kind, value in self.metrics.utilization_by_resource().items():
            out[f"utilization_{kind.label.lower()}"] = value
        if self.prediction_error_rate is not None:
            out["prediction_error_rate"] = self.prediction_error_rate
        if self.resilience is not None:
            out["n_failed"] = float(self.n_failed)
            out.update(self.resilience)
        return out


class ClusterSimulator:
    """Instantiates a profile and replays a workload under a scheduler."""

    def __init__(
        self,
        profile: ClusterProfile,
        scheduler: Scheduler,
        config: SimulationConfig | None = None,
        *,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.profile = profile
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self.pms: list[PhysicalMachine]
        self.vms: list[VirtualMachine]
        self.pms, self.vms = profile.build()
        self.metrics = MetricsRecorder()
        self.slo_tracker = SloTracker(spec=self.config.slo)
        self.pending: list[Job] = []
        self.running: list[Job] = []
        self.rejected: list[Job] = []
        self.completed: list[Job] = []
        self.failed: list[Job] = []
        self.current_slot: int = 0
        self._max_capacity_cache: tuple[tuple[object, ...], ResourceVector] | None = None
        # An empty plan builds no injector: the fault layer then adds
        # zero work (and zero behavioural difference) to the slot loop.
        self.faults: "FaultInjector | None" = None
        if fault_plan:
            from ..faults.injector import FaultInjector

            self.faults = FaultInjector(fault_plan)
        scheduler.bind(self)

    @property
    def predictor_available(self) -> bool:
        """False while a fault plan has the prediction service down."""
        return self.faults is None or self.faults.predictor_available

    # ------------------------------------------------------------------
    def max_vm_capacity(self) -> ResourceVector:
        """Elementwise max capacity across VMs (the ``C'`` of Eq. 22).

        Memoized: the simulator consults it for every arriving job but
        capacity only changes when the cluster is reconfigured or a
        fault revokes/restores capacity, so the cache is keyed on the
        VM identities plus their capacity versions.
        """
        key = tuple((id(vm), vm.capacity_version) for vm in self.vms)
        cached = self._max_capacity_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        value = ResourceVector.elementwise_max(vm.capacity for vm in self.vms)
        self._max_capacity_cache = (key, value)
        return value

    def _admit(self, job: Job) -> bool:
        """Reject jobs no VM could ever host (prevents starved queues)."""
        biggest = self.max_vm_capacity()
        return job.requested.fits_within(biggest)

    # ------------------------------------------------------------------
    def run(self, trace: Trace, *, history: Trace | None = None) -> SimulationResult:
        """Replay ``trace`` and return the run's metrics.

        Parameters
        ----------
        trace:
            The evaluation workload (already resampled to slot period).
        history:
            Historical trace for the scheduler's offline phase (model
            training).  Defaults to ``trace`` itself — the paper trains
            on "the historical resource usage data from the Google
            trace", i.e. the same distribution the evaluation replays.
        """
        from ..trace.workload import build_workload

        cfg = self.config
        workload = build_workload(trace, cfg.slot_duration_s)
        self.scheduler.prepare(history if history is not None else trace)
        n_submitted = 0

        slot = 0
        while slot < cfg.max_slots:
            # Stop once all arrivals happened (arrival slots are
            # 0..n_slots-1) and either draining is off or nothing is
            # left in flight (including jobs waiting out a retry
            # backoff).  Checking *before* executing means a run never
            # spends a guaranteed-empty trailing slot.
            if slot >= workload.n_slots and (
                not cfg.drain
                or (
                    not self.pending
                    and not self.running
                    and not (self.faults is not None and self.faults.has_backlog())
                )
            ):
                break
            self.current_slot = slot
            # 0. faults due this slot (restores, evictions, outages)
            if self.faults is not None:
                self.faults.begin_slot(slot, self)
            # 1. arrivals
            for record in workload.arrivals_at(slot):
                job = Job(record=record, submit_slot=slot)
                n_submitted += 1
                if self._admit(job):
                    self.pending.append(job)
                else:
                    self.rejected.append(job)

            # 2. scheduling (the timed decision path)
            with self.scheduler.latency.measure():
                self.scheduler.on_slot_start(slot)
                placed = self.scheduler.place_jobs(tuple(self.pending), slot)
            placed_ids = {j.job_id for j in placed}
            if placed_ids:
                self.pending = [j for j in self.pending if j.job_id not in placed_ids]
                self.running.extend(placed)
                if self.faults is not None:
                    self.faults.note_placements(placed, slot)

            # 3. execute the slot on every VM (accumulated as flat
            # arrays — per-VM ResourceVector sums dominated this loop)
            outcomes: dict[int, SlotOutcome] = {}
            total_demand = np.zeros(NUM_RESOURCES)
            total_committed = np.zeros(NUM_RESOURCES)
            for vm in self.vms:
                if not vm.online:
                    continue
                snapshot = (
                    CHECK.checker.before_execute(vm) if CHECK.enabled else None
                )
                outcome = vm.execute_slot(slot)
                if CHECK.enabled:
                    CHECK.checker.after_execute(
                        vm, slot, outcome, snapshot,
                        scheduler=self.scheduler.name,
                    )
                outcomes[vm.vm_id] = outcome
                total_demand += outcome.served_demand.as_array()
                total_committed += outcome.committed.as_array()
            self.metrics.record_arrays(total_demand, total_committed)

            # 4. completions
            for vm in self.vms:
                for job in vm.remove_completed():
                    self.slo_tracker.record(job)
                    self.completed.append(job)
            self.running = [j for j in self.running if j.state is JobState.RUNNING]

            # 5. scheduler feedback
            self.scheduler.on_slot_end(slot, outcomes)

            if CHECK.enabled:
                CHECK.checker.end_slot(self, slot, n_submitted)

            if OBS.enabled:
                w = self.metrics.weights
                den = float(total_committed @ w)
                util = (
                    min(float(total_demand @ w) / den, 1.0)
                    if den > 1e-12 else 0.0
                )
                OBS.emit(
                    "slot",
                    slot=slot,
                    scheduler=self.scheduler.name,
                    utilization=util,
                    wastage=1.0 - util if den > 1e-12 else 0.0,
                    queue_depth=len(self.pending),
                    running=len(self.running),
                    completed=len(self.completed),
                    rejected=len(self.rejected),
                )
                OBS.count("sim.slots")

            slot += 1

        # An empty prediction log has no error rate (it is NaN, not a
        # perfect 0.0) — report None so summaries omit the metric.
        error_rate = None
        if len(self.scheduler.prediction_log) > 0:
            error_rate = self.scheduler.prediction_log.error_rate(
                tolerance=getattr(self.scheduler, "error_tolerance", 0.75)
            )
            if np.isnan(error_rate):  # pragma: no cover - defensive
                error_rate = None
        jobs = self.completed + self.running + self.pending + self.rejected
        resilience = None
        if self.faults is not None:
            jobs += self.failed + self.faults.backlog_jobs()
            resilience = self.faults.result_stats(self)
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            metrics=self.metrics,
            slo=self.slo_tracker,
            n_slots=slot,
            n_submitted=n_submitted,
            n_completed=len(self.completed),
            n_rejected=len(self.rejected),
            allocation_latency_s=self.scheduler.latency.total_s,
            prediction_error_rate=error_rate,
            jobs=jobs,
            n_failed=len(self.failed),
            resilience=resilience,
        )
