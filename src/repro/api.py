"""The stable public API facade.

Everything a consumer of the reproduction needs sits behind four typed,
keyword-only entry points plus the observability attachments:

* :func:`run_one` — one (scenario, method) run → :class:`SimulationResult`;
* :func:`compare` — all methods on one workload → ``method → result``;
* :func:`sweep` — scenarios × methods, optionally process-parallel;
* :func:`attach_sink` / :func:`detach_sink` / :func:`capture_events` —
  stream structured decision events (JSONL or custom sinks);
* :func:`profile_run` — a profiled comparison run returning the
  per-stage timing table ``repro profile`` prints.

Deeper imports (``repro.experiments.runner`` and friends) keep working,
but new code should come through here: these signatures are the ones the
deprecation policy protects.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .cluster.simulator import SimulationResult
from .core.config import CorpConfig
from .experiments.runner import (
    METHOD_ORDER,
    PredictorCache,
    default_schedulers,
    run_methods,
    run_scenario,
    run_specs,
    sweep_specs,
)
from .experiments.scenarios import Scenario, cluster_scenario, ec2_scenario
from .obs import OBS, Sink
from .obs import attach_sink as _attach_sink
from .obs import capture_events, detach_sink

__all__ = [
    "compare",
    "sweep",
    "run_one",
    "profile_run",
    "attach_sink",
    "detach_sink",
    "capture_events",
    "build_scenario",
    "PredictorCache",
    "Scenario",
    "SimulationResult",
    "METHOD_ORDER",
]


def attach_sink(sink: Sink | str) -> Sink:
    """Attach an event sink (a :class:`~repro.obs.Sink` or a JSONL path).

    Events from subsequent runs stream to the sink until
    :func:`detach_sink`.  Prefer the :func:`capture_events` context
    manager when the capture window is a single block.
    """
    return _attach_sink(sink)


def build_scenario(
    *,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
) -> Scenario:
    """A testbed scenario by name (``"cluster"`` or ``"ec2"``)."""
    builders = {"cluster": cluster_scenario, "ec2": ec2_scenario}
    try:
        builder = builders[testbed]
    except KeyError:
        raise ValueError(
            f"unknown testbed {testbed!r} (expected 'cluster' or 'ec2')"
        ) from None
    return builder(jobs, seed=seed)


def run_one(
    *,
    scenario: Scenario,
    method: str,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
    predictor_cache: PredictorCache | None = None,
) -> SimulationResult:
    """Run one method on one scenario."""
    if method not in METHOD_ORDER:
        raise ValueError(
            f"unknown method {method!r} (expected one of {METHOD_ORDER})"
        )
    with OBS.span("trace:generate"):
        trace = scenario.evaluation_trace()
        history = scenario.history_trace()
    factories = default_schedulers(
        corp_config=corp_config,
        history=history,
        predictor_cache=predictor_cache,
        seed=seed,
    )
    return run_scenario(
        scenario, factories[method](), trace=trace, history=history
    )


def compare(
    *,
    scenario: Scenario | None = None,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
) -> dict[str, SimulationResult]:
    """Run every method on the same workload; ``method → result``.

    Pass either a prebuilt ``scenario`` or the (``jobs``, ``testbed``,
    ``seed``) triple to build one.  ``workers >= 2`` fans the methods
    over worker processes — results are bit-identical to serial, but
    observability (events/spans) is process-local, so the serial path
    is forced whenever a sink is attached or profiling is on.
    """
    if scenario is None:
        scenario = build_scenario(jobs=jobs, testbed=testbed, seed=seed)
    methods = tuple(methods)
    if workers >= 2 and not OBS.enabled:
        specs = sweep_specs(scenarios=[scenario], methods=methods, seed=seed)
        by_spec = run_specs(
            specs=specs, workers=workers, predictor_cache=predictor_cache
        )
        return {s.method: r for s, r in zip(specs, by_spec)}
    return run_methods(
        scenario=scenario,
        methods=methods,
        predictor_cache=predictor_cache,
        seed=seed,
    )


def sweep(
    *,
    scenarios: Sequence[Scenario],
    methods: Iterable[str] = METHOD_ORDER,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
) -> list[SimulationResult]:
    """Scenarios × methods, in sweep order (scenario-major).

    The list aligns with ``sweep_specs(scenarios=...)``.  As with
    :func:`compare`, worker fan-out is skipped while observability is
    recording (events and spans are process-local).
    """
    specs = sweep_specs(
        scenarios=scenarios, methods=methods, seed=seed, corp_config=corp_config
    )
    effective_workers = 0 if OBS.enabled else workers
    return run_specs(
        specs=specs, workers=effective_workers, predictor_cache=predictor_cache
    )


def profile_run(
    *,
    jobs: int = 50,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
) -> dict:
    """Run a profiled comparison and return the per-stage report.

    Enables counter/timer recording for the duration of one serial
    :func:`compare`, then returns::

        {
          "stages":   [{"stage", "calls", "total_s", "mean_s", "share"}...],
          "counters": {name: value, ...},
          "summaries": {method: summary-dict, ...},
          "total_s":  float,
        }

    The caller keeps any already-attached event sink; profiling state
    and previously recorded counters/timers are reset first so the
    report covers exactly this run.
    """
    OBS.counters.reset()
    OBS.timers.reset()
    OBS.enable_profiling()
    try:
        results = compare(
            jobs=jobs, testbed=testbed, seed=seed, methods=methods, workers=0
        )
    finally:
        OBS.disable_profiling()
    stats = OBS.timers.snapshot()
    total = sum(s.total_s for s in stats)
    stages = [
        {
            "stage": s.name,
            "calls": s.count,
            "total_s": round(s.total_s, 6),
            "mean_s": round(s.mean_s, 6),
            "share": round(s.total_s / total, 4) if total > 0 else 0.0,
        }
        for s in stats
    ]
    return {
        "profile": "per-stage wall clock, one serial compare run",
        "jobs": jobs,
        "testbed": testbed,
        "seed": seed,
        "stages": stages,
        "counters": OBS.counters.snapshot(),
        "summaries": {m: r.summary() for m, r in results.items()},
        "total_s": round(total, 6),
    }
