"""The stable public API facade.

Everything a consumer of the reproduction needs sits behind typed,
keyword-only entry points plus the observability attachments:

* :func:`run_one` — one (scenario, method) run → :class:`SimulationResult`;
* :func:`compare` — all methods on one workload → ``method → result``;
* :func:`sweep` — scenarios × methods, optionally process-parallel;
* :func:`build_fault_plan` / :func:`inject` — seeded deterministic
  fault schedules and their attachment to scenarios (``fault_plan=`` on
  the entry points is the shorthand);
* :func:`attach_sink` / :func:`detach_sink` / :func:`capture_events` —
  stream structured decision events (JSONL or custom sinks);
* :func:`profile_run` — a profiled comparison run returning the
  per-stage timing table ``repro profile`` prints;
* :func:`check_run` / :func:`replay` (v1.3) — a comparison run with the
  runtime invariant checker installed, and differential replay of a
  captured event stream against a fresh live run;
* :func:`open_service` / :func:`takeover_run` (v1.5) — the long-lived
  asyncio allocation service over the event kernel (submit jobs live,
  stream placements, ``drain()`` for the final result), and the
  standby-takeover drill (a snapshot-restored kernel must finish the
  run identically to the live one).

This facade is the **only supported import surface**: deeper imports
(``repro.experiments.runner`` and friends) may break without notice
between releases, while the signatures here are the ones the
deprecation policy protects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .check import CheckReport, ReplayReport

from .cluster.simulator import SimulationResult
from .core.config import CorpConfig
from .core.predictor_store import PredictorStore, default_store_dir
from .experiments.runner import (
    METHOD_ORDER,
    PredictorCache,
    default_schedulers,
    run_methods,
    run_scenario,
    run_specs,
    sweep_specs,
)
from .experiments.scenarios import Scenario, cluster_scenario, ec2_scenario
from .faults.plan import FaultPlan, RetryPolicy, build_fault_plan
from .faults.takeover import TakeoverReport, takeover_run
from .obs import OBS, Sink
from .obs import attach_sink as _attach_sink
from .obs import capture_events, detach_sink
from .service.daemon import PlacementUpdate, SchedulerService, open_service

__all__ = [
    "compare",
    "sweep",
    "run_one",
    "profile_run",
    "check_run",
    "replay",
    "inject",
    "build_fault_plan",
    "open_service",
    "takeover_run",
    "PlacementUpdate",
    "SchedulerService",
    "TakeoverReport",
    "attach_sink",
    "detach_sink",
    "capture_events",
    "build_scenario",
    "FaultPlan",
    "RetryPolicy",
    "PredictorCache",
    "PredictorStore",
    "default_store_dir",
    "Scenario",
    "SimulationResult",
    "METHOD_ORDER",
]


def attach_sink(sink: Sink | str) -> Sink:
    """Attach an event sink (a :class:`~repro.obs.Sink` or a JSONL path).

    Events from subsequent runs stream to the sink until
    :func:`detach_sink`.  Prefer the :func:`capture_events` context
    manager when the capture window is a single block.
    """
    return _attach_sink(sink)


def build_scenario(
    *,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
) -> Scenario:
    """A testbed scenario by name (``"cluster"`` or ``"ec2"``)."""
    builders = {"cluster": cluster_scenario, "ec2": ec2_scenario}
    try:
        builder = builders[testbed]
    except KeyError:
        raise ValueError(
            f"unknown testbed {testbed!r} (expected 'cluster' or 'ec2')"
        ) from None
    return builder(jobs, seed=seed)


def inject(*, scenario: Scenario, plan: FaultPlan | None) -> Scenario:
    """A copy of ``scenario`` replaying ``plan`` (``None`` removes one).

    The returned scenario runs the same workload under the plan's fault
    schedule; the original is untouched (scenarios are immutable).
    """
    return scenario.with_fault_plan(plan)


def _apply_fault_plan(
    scenario: Scenario, fault_plan: FaultPlan | None
) -> Scenario:
    """Fold an explicit ``fault_plan=`` argument into the scenario."""
    if fault_plan is None:
        return scenario
    return scenario.with_fault_plan(fault_plan)


def _parallel_events_path(workers: int) -> str | None:
    """How a parallel run coexists with attached observability.

    Returns the shard base path (the attached sink's file path) when
    per-worker event shards can be merged on join, or ``None`` when no
    sink is attached.  Observability modes that cannot cross process
    boundaries raise a clear :class:`ValueError` instead of silently
    forcing the serial path.
    """
    if workers < 2:
        return None
    from .check import CHECK

    if CHECK.enabled:
        raise ValueError(
            "workers >= 2 is incompatible with an installed invariant "
            "checker: violations recorded in worker processes cannot reach "
            "it. Use workers=0 while checking."
        )
    if OBS.profiling:
        raise ValueError(
            "workers >= 2 is incompatible with profiling: counters and "
            "timers are process-local. Use workers=0 while profiling."
        )
    sink = OBS.sink
    if sink is None:
        return None
    path = getattr(sink, "path", None)
    if path is None:
        raise ValueError(
            "workers >= 2 with an in-memory or stream-backed sink attached: "
            "events recorded in worker processes cannot reach it. Attach a "
            "path-backed JSONL sink (attach_sink('events.jsonl')) to have "
            "per-worker shards merged on join, or run with workers=0."
        )
    return path


def _emit_run_meta(
    *,
    scenario: Scenario,
    methods: tuple[str, ...],
    jobs: int | None,
    testbed: str | None,
    seed: int | None,
    replayable: bool,
) -> None:
    """Stamp an attached capture with the parameters replay needs.

    Emitted only when a sink is attached; a capture without this record
    cannot be replayed (:func:`replay` says so).  ``replayable`` is
    False for prebuilt scenarios — their construction parameters are
    unknown here, so the record still documents the run but replay
    refuses it.
    """
    if OBS.sink is None:
        return
    from dataclasses import asdict

    from . import __version__

    plan = scenario.fault_plan
    plan_payload = None
    if plan:
        plan_payload = {"retry": asdict(plan.retry), "events": plan.to_dicts()}
    OBS.emit(
        "run_meta",
        version=__version__,
        replayable=replayable,
        jobs=jobs,
        testbed=testbed,
        seed=seed,
        scenario=scenario.name,
        methods=list(methods),
        fault_plan=plan_payload,
    )


def run_one(
    *,
    scenario: Scenario,
    method: str,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
    predictor_cache: PredictorCache | None = None,
    fault_plan: FaultPlan | None = None,
) -> SimulationResult:
    """Run one method on one scenario (optionally under a fault plan)."""
    if method not in METHOD_ORDER:
        raise ValueError(
            f"unknown method {method!r} (expected one of {METHOD_ORDER})"
        )
    scenario = _apply_fault_plan(scenario, fault_plan)
    with OBS.span("trace:generate"):
        trace = scenario.evaluation_trace()
        history = scenario.history_trace()
    factories = default_schedulers(
        corp_config=corp_config,
        history=history,
        predictor_cache=predictor_cache,
        seed=seed,
    )
    return run_scenario(
        scenario, factories[method](), trace=trace, history=history
    )


def compare(
    *,
    scenario: Scenario | None = None,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
    fault_plan: FaultPlan | None = None,
) -> dict[str, SimulationResult]:
    """Run every method on the same workload; ``method → result``.

    Pass either a prebuilt ``scenario`` or the (``jobs``, ``testbed``,
    ``seed``) triple to build one; ``fault_plan=`` replays a fault
    schedule against every method.  ``workers >= 2`` fans the methods
    over worker processes — results are bit-identical to serial.  With a
    path-backed JSONL sink attached, each worker records its events to a
    shard merged (in method order) on join; in-memory sinks and
    profiling cannot cross processes and raise :class:`ValueError`.
    """
    built_here = scenario is None
    if scenario is None:
        scenario = build_scenario(jobs=jobs, testbed=testbed, seed=seed)
    scenario = _apply_fault_plan(scenario, fault_plan)
    methods = tuple(methods)
    _emit_run_meta(
        scenario=scenario,
        methods=methods,
        jobs=jobs if built_here else None,
        testbed=testbed if built_here else None,
        seed=seed if built_here else None,
        replayable=built_here,
    )
    if workers >= 2:
        events_path = _parallel_events_path(workers)
        specs = sweep_specs(scenarios=[scenario], methods=methods, seed=seed)
        by_spec = run_specs(
            specs=specs,
            workers=workers,
            predictor_cache=predictor_cache,
            events_path=events_path,
        )
        return {s.method: r for s, r in zip(specs, by_spec)}
    return run_methods(
        scenario=scenario,
        methods=methods,
        predictor_cache=predictor_cache,
        seed=seed,
    )


def sweep(
    *,
    scenarios: Sequence[Scenario],
    methods: Iterable[str] = METHOD_ORDER,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[SimulationResult]:
    """Scenarios × methods, in sweep order (scenario-major).

    The list aligns with ``sweep_specs(scenarios=...)``.  A
    ``fault_plan=`` here applies the same schedule to *every* scenario
    (build per-scenario plans with :func:`inject` for anything finer,
    e.g. a fault-intensity sweep).  Parallel observability follows
    :func:`compare`'s rules: path-backed JSONL sinks shard per worker
    and merge on join; other recording modes raise :class:`ValueError`
    with ``workers >= 2``.
    """
    scenarios = [_apply_fault_plan(s, fault_plan) for s in scenarios]
    specs = sweep_specs(
        scenarios=scenarios, methods=methods, seed=seed, corp_config=corp_config
    )
    events_path = _parallel_events_path(workers)
    return run_specs(
        specs=specs,
        workers=workers,
        predictor_cache=predictor_cache,
        events_path=events_path,
    )


def profile_run(
    *,
    jobs: int = 50,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
    predictor_cache: PredictorCache | None = None,
    predictor_cache_size: int = 16,
) -> dict:
    """Run a profiled comparison and return the per-stage report.

    Enables counter/timer recording for the duration of one serial
    :func:`compare`, then returns::

        {
          "stages":   [{"stage", "calls", "total_s", "mean_s", "share"}...],
          "counters": {name: value, ...},
          "summaries": {method: summary-dict, ...},
          "predictor_cache": {size, maxsize, hits, misses[, store...]},
          "total_s":  float,
        }

    ``predictor_cache=`` profiles against a caller-configured cache
    (e.g. one with a :class:`PredictorStore` attached); otherwise a
    fresh in-memory cache of ``predictor_cache_size`` entries is used.
    The caller keeps any already-attached event sink; profiling state
    and previously recorded counters/timers are reset first so the
    report covers exactly this run.
    """
    cache = (
        predictor_cache
        if predictor_cache is not None
        else PredictorCache(maxsize=predictor_cache_size)
    )
    OBS.counters.reset()
    OBS.timers.reset()
    OBS.enable_profiling()
    try:
        results = compare(
            jobs=jobs, testbed=testbed, seed=seed, methods=methods,
            workers=0, predictor_cache=cache,
        )
    finally:
        OBS.disable_profiling()
    stats = OBS.timers.snapshot()
    total = sum(s.total_s for s in stats)
    stages = [
        {
            "stage": s.name,
            "calls": s.count,
            "total_s": round(s.total_s, 6),
            "mean_s": round(s.mean_s, 6),
            "share": round(s.total_s / total, 4) if total > 0 else 0.0,
        }
        for s in stats
    ]
    return {
        "profile": "per-stage wall clock, one serial compare run",
        "jobs": jobs,
        "testbed": testbed,
        "seed": seed,
        "stages": stages,
        "counters": OBS.counters.snapshot(),
        "summaries": {m: r.summary() for m, r in results.items()},
        "predictor_cache": cache.stats(),
        "total_s": round(total, 6),
    }


def check_run(
    *,
    scenario: Scenario | None = None,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
    predictor_cache: PredictorCache | None = None,
    fault_plan: FaultPlan | None = None,
    rules: Iterable[str] | None = None,
    tolerance: float = 1e-6,
    differential: bool = False,
    events: str | None = None,
) -> "CheckReport":
    """Run every method with the runtime invariant checker installed.

    Same workload semantics as :func:`compare` (forced serial — checker
    state is process-local), with the :mod:`repro.check` rules evaluated
    at every decision point: capacity conservation, job conservation
    under faults, Eq. 21 gate soundness, packing feasibility and Eq. 22
    optimality.  ``differential=True`` adds the per-slot
    reference-vs-vectorized execution diff; ``rules=`` selects an
    explicit subset.  ``events=`` additionally captures the run's event
    stream (with the ``run_meta`` record :func:`replay` needs) to a
    JSONL file.

    The checker is read-only: the returned report's ``summaries`` are
    byte-identical to what an unchecked :func:`compare` would produce
    (modulo ``allocation_latency_s``, which is measured from the wall
    clock and so differs between *any* two runs).
    """
    from .check import CHECK, CheckReport, InvariantChecker

    rule_set = tuple(rules) if rules is not None else None
    if differential:
        if rule_set is None:
            from .check import DEFAULT_RULES

            rule_set = DEFAULT_RULES
        if "differential" not in rule_set:
            rule_set = rule_set + ("differential",)
    checker = InvariantChecker(rules=rule_set, tolerance=tolerance)
    attached = attach_sink(events) if events is not None else None
    try:
        with CHECK.session(checker):
            results = compare(
                scenario=scenario,
                jobs=jobs,
                testbed=testbed,
                seed=seed,
                methods=methods,
                workers=0,
                predictor_cache=predictor_cache,
                fault_plan=fault_plan,
            )
    finally:
        if attached is not None and OBS.sink is attached:
            detach_sink()
    return CheckReport(
        violations=list(checker.violations),
        checks=dict(checker.checks),
        n_violations=checker.n_violations,
        summaries={m: r.summary() for m, r in results.items()},
    )


def replay(
    *,
    events: str,
    methods: Iterable[str] | None = None,
    tolerance: float = 1e-9,
    max_mismatches: int = 100,
) -> "ReplayReport":
    """Differential replay: re-run a capture and diff the event streams.

    ``events`` must be a JSONL capture with a ``run_meta`` record (any
    v1.3+ capture from :func:`compare` or :func:`check_run` taken while
    a sink was attached).  The scenario is rebuilt from that record —
    including the fault plan — run live into an in-memory sink, and the
    per-slot state (``slot`` events) plus every placement decision is
    compared record-by-record.  The simulator is deterministic, so a
    clean replay reproduces the capture exactly; the report pinpoints
    the first diverging slot/field otherwise.
    """
    from .check.replay import replay_events

    return replay_events(
        events=events,
        methods=methods,
        tolerance=tolerance,
        max_mismatches=max_mismatches,
    )
